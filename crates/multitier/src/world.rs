//! The simulated RUBiS deployment (Fig. 7): client emulators driving an
//! httpd → JBoss → MySQL pipeline over TCP-like channels, with CPU
//! cores, connector thread pools (`MaxThreads`), database concurrency
//! tokens, fault injection, noise generators and the TCP_TRACE probe.
//!
//! The model is a single [`World`] implementation driven by
//! `simnet::Simulator`. Each execution entity (httpd process, JBoss
//! connector thread, MySQL connection thread) services **one request at
//! a time** — the paper's assumption 2 — and every kernel-level send
//! and receive on a traced node emits a probe record.
//!
//! Beyond the paper's fixed testbed, three workload families stress the
//! correlator where its rules are hardest:
//!
//! * **Replicated tiers behind a load balancer**
//!   ([`TierSpec::replicas`](crate::spec::TierSpec) +
//!   [`LbPolicy`](crate::spec::LbPolicy)): one logical tier becomes N
//!   hosts with distinct IPs and hostnames; upstream callers pick a
//!   replica per connection (web, db) or per request (app), so the
//!   correlator must stitch each request across whichever replica
//!   served it.
//! * **Connection pooling** ([`PoolSpec`](crate::spec::PoolSpec)): the
//!   web tier multiplexes backend requests over few persistent
//!   connections shared by *all* httpd processes, and the app side
//!   services consecutive requests of one connection with different
//!   connector threads — execution entity ≠ connection on both ends
//!   (the paper's event-driven caveat), exercising Rule 1's byte-claim
//!   matching on reused channels.
//! * **Packet loss and retransmission**
//!   ([`WireParams::loss`](simnet::WireParams)): segments are dropped
//!   and retransmitted with backoff, arriving late and out of order;
//!   spurious retransmissions deliver duplicate byte ranges, which the
//!   probe's sniffer lane logs as `retrans`-marked records the
//!   correlator must discard.

use std::collections::{HashMap, VecDeque};
use std::net::Ipv4Addr;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::tcp::ReadResult;
use simnet::{
    Addr, ClockModel, Dist, FifoResource, Gate, PortAlloc, RecvBuffer, Scheduler, SimDur, SimTime,
    Wire, WireParams, World,
};
use tracer_core::raw::RawOp;
use tracer_core::EndpointV4;

use crate::groundtruth::TruthCollector;
use crate::probe::{ProbeSink, ProbedNode};
use crate::report::ServiceMetrics;
use crate::spec::{Mix, NoiseSpec, Phases, ServiceSpec};

/// Message direction on a connection: `Fwd` flows opener → acceptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Opener → acceptor (requests).
    Fwd,
    /// Acceptor → opener (responses).
    Rev,
}

impl Dir {
    /// The opposite direction.
    pub fn flip(self) -> Dir {
        match self {
            Dir::Fwd => Dir::Rev,
            Dir::Rev => Dir::Fwd,
        }
    }
}

/// Simulation events.
#[derive(Debug, Clone)]
pub enum Ev {
    /// A client comes online (ramp-up) and issues its first request.
    ClientStart(usize),
    /// A client finished thinking; issue the next request.
    ClientThink(usize),
    /// A wire segment arrives at the receiver's kernel buffer.
    Seg {
        /// Connection id.
        conn: u64,
        /// Direction of the segment.
        dir: Dir,
        /// Absolute stream offset of the segment's first byte.
        offset: u64,
        /// Payload bytes.
        bytes: u64,
    },
    /// A worker's CPU hold completed.
    CpuDone {
        /// Tier index.
        tier: usize,
        /// Worker index.
        worker: usize,
    },
    /// A worker's non-CPU delay completed (conn setup, EJB delay,
    /// db dispatch).
    Delay {
        /// Tier index.
        tier: usize,
        /// Worker index.
        worker: usize,
        /// Epoch guard against stale events.
        epoch: u64,
    },
    /// A JBoss connector thread's keep-alive linger expired.
    LingerCheck {
        /// Worker index in the app tier.
        worker: usize,
        /// Epoch guard.
        epoch: u64,
    },
    /// Background ssh/rlogin chatter on the web node.
    NoiseSsh,
    /// Background MySQL-client query from an untraced host.
    NoiseMysql,
}

const WEB: usize = 0;
const APP: usize = 1;
const DB: usize = 2;

/// Base added to every node's clock so that negative skews never clamp
/// local timestamps at zero (real machines' clocks don't start at the
/// experiment epoch either).
const CLOCK_EPOCH_NS: i64 = 10_000_000_000;

/// What is attached to one side of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Attach {
    None,
    Client(usize),
    Worker(usize, usize),
    /// Noise MySQL-client session: the db-side thread id.
    NoiseDb(u32),
}

#[derive(Debug)]
struct Conn {
    src: Addr,
    dst: Addr,
    src_node: usize,
    dst_node: usize,
    fwd_buf: RecvBuffer,
    rev_buf: RecvBuffer,
    opener: Attach,
    acceptor: Attach,
    /// (request id, request type) of in-flight forward messages, FIFO.
    fwd_reqs: VecDeque<(u64, usize)>,
    /// App-tier conns: whether a connector thread was requested.
    pool_queued: bool,
    /// Stream bytes sent so far per direction (wire segment offsets).
    fwd_off: u64,
    rev_off: u64,
    /// Sniffer lane (v2): stream bytes covered by already-logged
    /// receive records per direction — the `seq=` of the next one.
    fwd_read_off: u64,
    rev_read_off: u64,
    /// Sniffer lane (v2): bytes of the current in-progress message read
    /// but not yet logged (the frontend reassembles one record per
    /// logical message).
    fwd_read_acc: u64,
    rev_read_acc: u64,
    /// Pooled web→app conns survive their request and return to the
    /// pool instead of being abandoned.
    persistent: bool,
}

impl Conn {
    fn buf(&mut self, dir: Dir) -> &mut RecvBuffer {
        match dir {
            Dir::Fwd => &mut self.fwd_buf,
            Dir::Rev => &mut self.rev_buf,
        }
    }

    fn channel(&self, dir: Dir) -> (Addr, Addr) {
        match dir {
            Dir::Fwd => (self.src, self.dst),
            Dir::Rev => (self.dst, self.src),
        }
    }
}

/// One (web node, app node) connection pool: few persistent upstream
/// connections multiplexing many logical requests, checkout-serialized.
#[derive(Debug, Default)]
struct UpstreamPool {
    /// Idle pooled connections.
    free: Vec<u64>,
    /// Connections created so far (bounded by `PoolSpec::connections`).
    created: usize,
    /// Web workers blocked on a free connection, FIFO.
    waiters: VecDeque<usize>,
}

/// Worker phases across all tiers (not every phase applies to every
/// tier; see the per-tier flows in the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    /// httpd: waiting for a pooled upstream connection.
    PoolWait,
    /// MySQL: waiting for a database concurrency token.
    TokenWait,
    /// MySQL: dispatch latency between token grant and the read.
    DispatchDelay,
    /// JBoss: connection accept + thread dispatch.
    ConnSetup,
    /// JBoss: CPU burned finishing connection dispatch.
    SetupCpu,
    /// Reading the request/query message.
    RecvRequest,
    /// MySQL: waiting on the locked `items` table (fault 2).
    LockWait,
    /// CPU before the first downstream call.
    CpuPre,
    /// CPU between downstream calls.
    CpuMid,
    /// CPU after the last downstream response.
    CpuPost,
    /// JBoss: injected EJB delay (fault 1).
    EjbDelay,
    /// Blocked on a downstream response.
    AwaitResult,
    /// JBoss: idle thread pinned to its keep-alive connection.
    Linger,
}

#[derive(Debug)]
struct Worker {
    pid: u32,
    tid: u32,
    /// Simulation node this worker runs on (a tier replica).
    node: usize,
    /// Replica index within the worker's tier.
    replica: usize,
    phase: Phase,
    epoch: u64,
    /// Connection currently being serviced (tier side).
    conn: Option<u64>,
    /// (conn, dir) the worker is currently reading from.
    reading: Option<(u64, Dir)>,
    req: Option<u64>,
    rtype: usize,
    queries_left: u32,
    cpu_hold: SimDur,
    /// CPU splits precomputed at request start.
    cpu_mid: SimDur,
    cpu_post: SimDur,
    /// Pending CPU for a mysql query blocked on the lock.
    pending_cpu: SimDur,
    /// Probe cost owed to the CPU (folded into the next hold).
    overhead_debt: u64,
    /// java worker's persistent connection to mysql.
    mysql_conn: Option<u64>,
    holds_lock: bool,
}

impl Worker {
    fn new(pid: u32, tid: u32, node: usize, replica: usize) -> Self {
        Worker {
            pid,
            tid,
            node,
            replica,
            phase: Phase::Idle,
            epoch: 0,
            conn: None,
            reading: None,
            req: None,
            rtype: 0,
            queries_left: 0,
            cpu_hold: SimDur::ZERO,
            cpu_mid: SimDur::ZERO,
            cpu_post: SimDur::ZERO,
            pending_cpu: SimDur::ZERO,
            overhead_debt: 0,
            mysql_conn: None,
            holds_lock: false,
        }
    }
}

#[derive(Debug)]
struct Client {
    #[allow(dead_code)] // kept for diagnostics
    node: usize,
    conn: u64,
    stop_at: SimTime,
    issued_at: SimTime,
    req: Option<u64>,
    retired: bool,
}

/// Configuration of one simulation run (assembled by
/// [`experiment`](crate::experiment)).
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Service topology and demands.
    pub spec: ServiceSpec,
    /// Workload mix.
    pub mix: Mix,
    /// Number of concurrent emulated clients.
    pub clients: usize,
    /// Session phases.
    pub phases: Phases,
    /// Client think time (ns).
    pub think: Dist,
    /// Background noise.
    pub noise: NoiseSpec,
    /// RNG seed.
    pub seed: u64,
}

/// The simulated deployment; implements [`simnet::World`].
#[derive(Debug)]
pub struct RubisWorld {
    cfg: WorldConfig,
    rng: StdRng,
    programs: [Arc<str>; 3],
    node_ips: Vec<Ipv4Addr>,
    nic_bps: Vec<u64>,
    /// Replica counts per tier [web, app, db].
    tier_replicas: [usize; 3],
    /// Traced service node count (sum of all tier replicas); nodes
    /// `0..service_nodes` are probed, clients and noise hosts follow.
    service_nodes: usize,
    wires: HashMap<(usize, usize), Wire>,
    ports: Vec<PortAlloc>,
    conns: Vec<Conn>,
    /// One CPU resource per service node.
    cpus: Vec<FifoResource<(usize, usize)>>,
    /// JBoss connector pool (`MaxThreads`), one per app replica.
    thread_pool: Vec<FifoResource<u64>>,
    /// Database concurrency tokens, one set per db replica.
    db_tokens: Vec<FifoResource<usize>>,
    /// The locked `items` table, one gate per db replica.
    items_gate: Vec<Gate<usize>>,
    workers: [Vec<Worker>; 3],
    /// Free connector threads per app replica.
    app_free: Vec<Vec<usize>>,
    clients: Vec<Client>,
    /// Round-robin cursors per tier.
    lb_rr: [usize; 3],
    /// Open-connection counts per tier per replica (feeds
    /// least-connections balancing).
    lb_open: [Vec<u64>; 3],
    /// Web→app connection pools keyed by (web node, app node).
    pools: HashMap<(usize, usize), UpstreamPool>,
    /// Probe sink (taken at the end of the run).
    pub probe: ProbeSink,
    /// Ground truth (taken at the end of the run).
    pub truth: TruthCollector,
    /// Client-observed service metrics.
    pub metrics: ServiceMetrics,
    noise_conn: Option<u64>,
    noise_tid: u32,
    session_end: SimTime,
}

impl RubisWorld {
    /// Builds the world; call [`RubisWorld::seed_events`] before
    /// running.
    pub fn new(cfg: WorldConfig) -> Self {
        assert!(cfg.clients > 0, "need at least one client");
        let spec = &cfg.spec;
        let tier_replicas = [
            spec.web.replicas.max(1),
            spec.app.replicas.max(1),
            spec.db.replicas.max(1),
        ];
        assert!(
            cfg.clients <= spec.web.workers * tier_replicas[WEB],
            "httpd workers must cover all client connections"
        );
        let service_nodes = tier_replicas.iter().sum::<usize>();
        let programs = [
            Arc::<str>::from(spec.web.program),
            Arc::<str>::from(spec.app.program),
            Arc::<str>::from(spec.db.program),
        ];
        // Nodes: every tier replica in tier order (web*, app*, db*),
        // then client hosts, then the noise host.
        let mut node_ips = Vec::new();
        let mut probed = Vec::new();
        for (t, &reps) in tier_replicas.iter().enumerate() {
            let tier = spec.tier(t);
            for r in 0..reps {
                node_ips.push(tier.replica_ip(r));
                probed.push(ProbedNode {
                    hostname: tier.replica_hostname(r).into(),
                    clock: ClockModel {
                        offset_ns: CLOCK_EPOCH_NS + spec.clock_offsets_ns[t],
                        drift_ppm: spec.clock_drift_ppm[t],
                    },
                });
            }
        }
        node_ips.extend(spec.client_ips.iter().copied());
        node_ips.push(Ipv4Addr::new(172, 16, 0, 99)); // noise host
        let base_bw = spec.wire.bandwidth_bps;
        let mut nic_bps = vec![base_bw; node_ips.len()];
        if let Some(bps) = spec.app_net_bps() {
            // The degraded-NIC fault hits the whole app tier.
            let app_first = tier_replicas[WEB];
            for node in nic_bps.iter_mut().skip(app_first).take(tier_replicas[APP]) {
                *node = bps;
            }
        }
        let probe = ProbeSink::new(probed, spec.tracing);
        let node_of = |tier: usize, replica: usize| -> usize {
            tier_replicas[..tier].iter().sum::<usize>() + replica
        };
        let workers = [
            // Web workers get their replica at ramp-up (client LB).
            (0..cfg.clients)
                .map(|w| Worker::new(1000 + w as u32, 1000 + w as u32, node_of(WEB, 0), 0))
                .collect::<Vec<_>>(),
            (0..spec.app.workers * tier_replicas[APP])
                .map(|w| {
                    let replica = w / spec.app.workers;
                    let local = (w % spec.app.workers) as u32;
                    Worker::new(2000, 2001 + local, node_of(APP, replica), replica)
                })
                .collect(),
            (0..spec.db.workers * tier_replicas[DB])
                .map(|w| {
                    let replica = w / spec.db.workers;
                    let local = (w % spec.db.workers) as u32;
                    Worker::new(3000, 3001 + local, node_of(DB, replica), replica)
                })
                .collect(),
        ];
        let app_free: Vec<Vec<usize>> = (0..tier_replicas[APP])
            .map(|r| {
                (r * spec.app.workers..(r + 1) * spec.app.workers)
                    .rev()
                    .collect()
            })
            .collect();
        let cpus = (0..service_nodes)
            .map(|n| {
                let t = if n < tier_replicas[WEB] {
                    WEB
                } else if n < tier_replicas[WEB] + tier_replicas[APP] {
                    APP
                } else {
                    DB
                };
                FifoResource::new(spec.tier(t).cores)
            })
            .collect();
        let session_end = SimTime::ZERO + cfg.phases.total();
        let metrics = ServiceMetrics::new(cfg.phases);
        RubisWorld {
            rng: StdRng::seed_from_u64(cfg.seed),
            programs,
            node_ips,
            nic_bps,
            tier_replicas,
            service_nodes,
            wires: HashMap::new(),
            ports: Vec::new(),
            conns: Vec::new(),
            cpus,
            thread_pool: (0..tier_replicas[APP])
                .map(|_| FifoResource::new(cfg.spec.max_threads))
                .collect(),
            db_tokens: (0..tier_replicas[DB])
                .map(|_| FifoResource::new(cfg.spec.db_tokens))
                .collect(),
            items_gate: (0..tier_replicas[DB]).map(|_| Gate::new()).collect(),
            workers,
            app_free,
            clients: Vec::new(),
            lb_rr: [0; 3],
            lb_open: [
                vec![0; tier_replicas[WEB]],
                vec![0; tier_replicas[APP]],
                vec![0; tier_replicas[DB]],
            ],
            pools: HashMap::new(),
            probe,
            truth: TruthCollector::new(),
            metrics,
            noise_conn: None,
            noise_tid: 3900,
            session_end,
            cfg,
        }
    }

    /// The simulation node of a tier replica.
    fn node_of(&self, tier: usize, replica: usize) -> usize {
        self.tier_replicas[..tier].iter().sum::<usize>() + replica
    }

    /// The (tier, replica) of a service node.
    fn tier_of_node(&self, node: usize) -> (usize, usize) {
        let mut n = node;
        for (t, &reps) in self.tier_replicas.iter().enumerate() {
            if n < reps {
                return (t, n);
            }
            n -= reps;
        }
        panic!("node {node} is not a service node");
    }

    /// Picks a replica of `tier` for a new connection/request per the
    /// tier's load-balancing policy.
    fn pick_replica(&mut self, tier: usize) -> usize {
        let n = self.tier_replicas[tier];
        if n == 1 {
            return 0;
        }
        match self.cfg.spec.tier(tier).lb {
            crate::spec::LbPolicy::RoundRobin => {
                let r = self.lb_rr[tier] % n;
                self.lb_rr[tier] += 1;
                r
            }
            crate::spec::LbPolicy::LeastConnections => (0..n)
                .min_by_key(|&r| (self.lb_open[tier][r], r))
                .expect("tier has replicas"),
        }
    }

    /// Convenience: builds, seeds and runs the world to completion.
    pub fn run_to_completion(cfg: WorldConfig) -> RubisWorld {
        let mut sim = simnet::Simulator::new(RubisWorld::new(cfg));
        let mut sched = std::mem::take(sim.scheduler());
        sim.world.seed_events(&mut sched);
        *sim.scheduler() = sched;
        sim.run();
        sim.world
    }

    /// Schedules client ramp-up and noise generators.
    pub fn seed_events(&mut self, sched: &mut Scheduler<Ev>) {
        let n = self.cfg.clients;
        let up = self.cfg.phases.up;
        let steady_end = self.cfg.phases.up + self.cfg.phases.steady;
        let down = self.cfg.phases.down;
        self.ports = (0..self.node_ips.len()).map(|_| PortAlloc::new()).collect();
        for i in 0..n {
            let start = SimTime::ZERO + SimDur(up.as_nanos() * i as u64 / n as u64);
            let stop =
                SimTime::ZERO + steady_end + SimDur(down.as_nanos() * (i as u64 + 1) / n as u64);
            let node = self.service_nodes + (i % self.cfg.spec.client_ips.len());
            // The front-of-fleet load balancer assigns the client's
            // keep-alive connection to a web replica.
            let wr = self.pick_replica(WEB);
            let web_node = self.node_of(WEB, wr);
            self.lb_open[WEB][wr] += 1;
            self.workers[WEB][i].node = web_node;
            self.workers[WEB][i].replica = wr;
            let port = self.ports[node].next_port();
            let conn = self.open_conn(
                node,
                web_node,
                Addr::new(self.node_ips[node], port),
                Addr::new(self.node_ips[web_node], self.cfg.spec.web.port),
            );
            self.conns[conn as usize].opener = Attach::Client(i);
            // A dedicated prefork httpd process owns this keep-alive
            // connection (worker index = client index).
            self.conns[conn as usize].acceptor = Attach::Worker(WEB, i);
            self.clients.push(Client {
                node,
                conn,
                stop_at: stop,
                issued_at: SimTime::ZERO,
                req: None,
                retired: false,
            });
            sched.at(start, Ev::ClientStart(i));
        }
        if self.cfg.noise.ssh_msgs_per_sec > 0.0 {
            sched.after(
                self.noise_gap(self.cfg.noise.ssh_msgs_per_sec / 2.0),
                Ev::NoiseSsh,
            );
        }
        if self.cfg.noise.mysql_msgs_per_sec > 0.0 {
            let noise_node = self.node_ips.len() - 1;
            let db_node = self.node_of(DB, 0);
            let port = self.ports[noise_node].next_port();
            let conn = self.open_conn(
                noise_node,
                db_node,
                Addr::new(self.node_ips[noise_node], port),
                Addr::new(self.node_ips[db_node], self.cfg.spec.db.port),
            );
            self.conns[conn as usize].acceptor = Attach::NoiseDb(self.noise_tid);
            self.noise_conn = Some(conn);
            sched.after(
                self.noise_gap(self.cfg.noise.mysql_msgs_per_sec / 2.0),
                Ev::NoiseMysql,
            );
        }
    }

    fn noise_gap(&mut self, per_sec: f64) -> SimDur {
        let mean_ns = 1e9 / per_sec.max(1e-9);
        SimDur(Dist::Exp { mean: mean_ns }.sample(&mut self.rng) as u64)
    }

    fn open_conn(&mut self, src_node: usize, dst_node: usize, src: Addr, dst: Addr) -> u64 {
        let id = self.conns.len() as u64;
        self.conns.push(Conn {
            src,
            dst,
            src_node,
            dst_node,
            fwd_buf: RecvBuffer::new(),
            rev_buf: RecvBuffer::new(),
            opener: Attach::None,
            acceptor: Attach::None,
            fwd_reqs: VecDeque::new(),
            pool_queued: false,
            fwd_off: 0,
            rev_off: 0,
            fwd_read_off: 0,
            rev_read_off: 0,
            fwd_read_acc: 0,
            rev_read_acc: 0,
            persistent: false,
        });
        id
    }

    fn wire_for(&mut self, a: usize, b: usize) -> &mut Wire {
        let base = self.cfg.spec.wire;
        let bw = self.nic_bps[a].min(self.nic_bps[b]);
        self.wires.entry((a, b)).or_insert_with(|| {
            Wire::new(WireParams {
                bandwidth_bps: bw,
                ..base
            })
        })
    }

    /// Sends a logical message; emits SEND probe records when the sender
    /// is a traced tier, and schedules segment arrivals.
    #[allow(clippy::too_many_arguments)]
    fn send_message(
        &mut self,
        sched: &mut Scheduler<Ev>,
        now: SimTime,
        conn_id: u64,
        dir: Dir,
        size: u64,
        req: Option<u64>,
        sender_worker: Option<(usize, usize)>,
        noise_tid: Option<u32>,
    ) {
        let size = size.max(1);
        let (src_node, dst_node, src, dst) = {
            let c = &self.conns[conn_id as usize];
            let (s, d) = c.channel(dir);
            match dir {
                Dir::Fwd => (c.src_node, c.dst_node, s, d),
                Dir::Rev => (c.dst_node, c.src_node, s, d),
            }
        };
        // The message's stream byte offset: the wire segment base and —
        // in the v2 sniffer lane — the base of its send records' seq=.
        let stream_off = {
            let c = &mut self.conns[conn_id as usize];
            c.buf(dir).push_message(size);
            match dir {
                Dir::Fwd => {
                    let o = c.fwd_off;
                    c.fwd_off += size;
                    o
                }
                Dir::Rev => {
                    let o = c.rev_off;
                    c.rev_off += size;
                    o
                }
            }
        };
        // Probe: one SEND record per application write chunk.
        let traced = src_node < self.service_nodes && self.probe.enabled();
        if traced {
            let capture = self.cfg.spec.capture;
            let chunk = self.cfg.spec.app_write_chunk.max(1);
            let (program, pid, tid) = match (sender_worker, noise_tid) {
                (Some((t, w)), _) => (
                    Arc::clone(&self.programs[t]),
                    self.workers[t][w].pid,
                    self.workers[t][w].tid,
                ),
                (None, Some(tid)) => (Arc::clone(&self.programs[DB]), 3000, tid),
                _ => unreachable!("traced sender must be a worker or noise thread"),
            };
            let mut off = 0u64;
            let mut i = 0u64;
            while off < size {
                let n = chunk.min(size - off);
                let mut captured = true;
                if let Some(cap) = capture {
                    let seq = stream_off + off;
                    if cap.drop > 0.0 && self.all_segments_missed(seq, n, cap.drop) {
                        captured = false;
                    } else {
                        self.probe.set_seq(seq);
                    }
                }
                if captured {
                    let uid = self.probe.log(
                        src_node,
                        SimTime(now.as_nanos() + i * 2_000),
                        &program,
                        pid,
                        tid,
                        RawOp::Send,
                        EndpointV4::new(src.ip, src.port),
                        EndpointV4::new(dst.ip, dst.port),
                        n,
                    );
                    match req {
                        Some(r) => self.truth.attribute(r, uid),
                        None => self.truth.note_noise(uid),
                    }
                    if let Some((t, w)) = sender_worker {
                        self.workers[t][w].overhead_debt += self.cfg.spec.probe_cost.as_nanos();
                    }
                } else {
                    self.probe.note_capture_dropped();
                }
                off += n;
                i += 1;
            }
        }
        let mut rng = std::mem::replace(&mut self.rng, StdRng::seed_from_u64(0));
        let plans = self
            .wire_for(src_node, dst_node)
            .transmit(now, size, &mut rng);
        self.rng = rng;
        for p in plans {
            sched.at(
                p.at,
                Ev::Seg {
                    conn: conn_id,
                    dir,
                    offset: stream_off + p.offset,
                    bytes: p.bytes,
                },
            );
        }
    }

    /// A worker reads everything readable; emits a RECEIVE probe record
    /// (kernel lane: one per read; sniffer lane: one per reassembled
    /// logical message). Returns the read result.
    fn worker_read(&mut self, now: SimTime, tier: usize, widx: usize) -> ReadResult {
        let (conn_id, dir) = self.workers[tier][widx]
            .reading
            .expect("worker_read requires a reading assignment");
        let r = self.conns[conn_id as usize].buf(dir).read();
        if r.bytes == 0 {
            return r;
        }
        if self.probe.enabled() {
            let req = self.workers[tier][widx].req.or_else(|| {
                self.conns[conn_id as usize]
                    .fwd_reqs
                    .front()
                    .map(|&(r, _)| r)
            });
            let program = Arc::clone(&self.programs[tier]);
            let (pid, tid) = (self.workers[tier][widx].pid, self.workers[tier][widx].tid);
            let node = self.workers[tier][widx].node;
            self.log_receive(
                now,
                conn_id,
                dir,
                &r,
                node,
                program,
                pid,
                tid,
                req,
                Some((tier, widx)),
            );
        }
        r
    }

    /// Logs one RECEIVE record. The kernel lane (v1) logs exactly the
    /// read; the sniffer lane (v2, [`crate::spec::CaptureSpec`]) instead
    /// reassembles one record per logical message — partial reads
    /// accumulate until the message completes — carrying `seq=`, and a
    /// partially-captured record is lost only when every wire segment
    /// overlapping its range was missed.
    #[allow(clippy::too_many_arguments)]
    fn log_receive(
        &mut self,
        now: SimTime,
        conn_id: u64,
        dir: Dir,
        r: &ReadResult,
        node: usize,
        program: Arc<str>,
        pid: u32,
        tid: u32,
        req: Option<u64>,
        overhead_worker: Option<(usize, usize)>,
    ) {
        let capture = self.cfg.spec.capture;
        let (src, dst) = self.conns[conn_id as usize].channel(dir);
        let size = match capture {
            None => r.bytes,
            Some(cap) => {
                let (size, seq) = {
                    let c = &mut self.conns[conn_id as usize];
                    let (acc, off) = match dir {
                        Dir::Fwd => (&mut c.fwd_read_acc, &mut c.fwd_read_off),
                        Dir::Rev => (&mut c.rev_read_acc, &mut c.rev_read_off),
                    };
                    *acc += r.bytes;
                    if r.messages_completed == 0 {
                        // Message still reassembling: the frontend has
                        // not seen its end yet, no record.
                        return;
                    }
                    let size = *acc;
                    let seq = *off;
                    *off += size;
                    *acc = 0;
                    (size, seq)
                };
                if cap.drop > 0.0 && self.all_segments_missed(seq, size, cap.drop) {
                    self.probe.note_capture_dropped();
                    return;
                }
                self.probe.set_seq(seq);
                size
            }
        };
        let uid = self.probe.log(
            node,
            now,
            &program,
            pid,
            tid,
            RawOp::Receive,
            EndpointV4::new(src.ip, src.port),
            EndpointV4::new(dst.ip, dst.port),
            size,
        );
        match req {
            Some(rq) => self.truth.attribute(rq, uid),
            None => self.truth.note_noise(uid),
        }
        if let Some((t, w)) = overhead_worker {
            self.workers[t][w].overhead_debt += self.cfg.spec.probe_cost.as_nanos();
        }
    }

    /// True when every wire segment overlapping `[seq, seq + len)` was
    /// missed by the sniffer, each independently with probability
    /// `drop` — the only way partial capture loses a whole record (the
    /// frontend heals interior gaps by `seq=` arithmetic).
    fn all_segments_missed(&mut self, seq: u64, len: u64, drop: f64) -> bool {
        let mss = u64::from(self.cfg.spec.wire.mss.max(1));
        let end = seq + len.max(1) - 1;
        let k = end / mss - seq / mss + 1;
        (0..k).all(|_| self.rng.gen_bool(drop))
    }

    fn sample(&mut self, d: Dist) -> u64 {
        d.sample(&mut self.rng) as u64
    }

    fn sample_dur(&mut self, d: Dist) -> SimDur {
        SimDur(d.sample(&mut self.rng) as u64)
    }

    /// Requests CPU on the worker's node; schedules `CpuDone` now or at
    /// grant.
    fn cpu_request(&mut self, sched: &mut Scheduler<Ev>, tier: usize, widx: usize, hold: SimDur) {
        let debt = std::mem::take(&mut self.workers[tier][widx].overhead_debt);
        let hold = hold + SimDur(debt);
        self.workers[tier][widx].cpu_hold = hold;
        let node = self.workers[tier][widx].node;
        if self.cpus[node].acquire((tier, widx)) {
            sched.after(hold, Ev::CpuDone { tier, worker: widx });
        }
    }

    /// Releases a CPU core on `node`; grants the next waiter.
    fn cpu_release(&mut self, sched: &mut Scheduler<Ev>, node: usize) {
        if let Some((t, w)) = self.cpus[node].release() {
            let hold = self.workers[t][w].cpu_hold;
            sched.after(hold, Ev::CpuDone { tier: t, worker: w });
        }
    }

    // ----- client behaviour ---------------------------------------------

    fn client_issue(&mut self, sched: &mut Scheduler<Ev>, now: SimTime, ci: usize) {
        if now >= self.clients[ci].stop_at {
            self.clients[ci].retired = true;
            return;
        }
        let rtype = self.cfg.mix.sample(&mut self.rng);
        let req = self.truth.new_request(rtype, now);
        self.metrics.on_issue(now);
        self.clients[ci].req = Some(req);
        self.clients[ci].issued_at = now;
        let conn = self.clients[ci].conn;
        let size = self.sample(self.cfg.mix.types[rtype].req_size);
        self.conns[conn as usize].fwd_reqs.push_back((req, rtype));
        self.send_message(sched, now, conn, Dir::Fwd, size, Some(req), None, None);
    }

    fn client_complete(&mut self, sched: &mut Scheduler<Ev>, now: SimTime, ci: usize) {
        let Some(req) = self.clients[ci].req.take() else {
            return;
        };
        self.truth.complete(req, now);
        let rt = now.since(self.clients[ci].issued_at);
        self.metrics.on_complete(now, rt);
        if self.clients[ci].retired || now >= self.clients[ci].stop_at {
            self.clients[ci].retired = true;
            return;
        }
        let think = self.sample_dur(self.cfg.think);
        sched.after(think, Ev::ClientThink(ci));
    }

    // ----- httpd (tier 0) ------------------------------------------------

    fn web_on_request_data(&mut self, sched: &mut Scheduler<Ev>, now: SimTime, conn: u64) {
        let Attach::Worker(_, w) = self.conns[conn as usize].acceptor else {
            return;
        };
        if self.workers[WEB][w].phase == Phase::Idle {
            self.workers[WEB][w].phase = Phase::RecvRequest;
            self.workers[WEB][w].conn = Some(conn);
            self.workers[WEB][w].reading = Some((conn, Dir::Fwd));
        }
        if self.workers[WEB][w].phase == Phase::RecvRequest {
            let r = self.worker_read(now, WEB, w);
            if r.messages_completed > 0 {
                let (req, rtype) = self.conns[conn as usize]
                    .fwd_reqs
                    .pop_front()
                    .expect("request message had a registered id");
                let wk = &mut self.workers[WEB][w];
                wk.req = Some(req);
                wk.rtype = rtype;
                wk.phase = Phase::CpuPre;
                let cpu = self.sample(self.cfg.mix.types[rtype].httpd_cpu);
                let pre = SimDur(cpu * 7 / 10);
                self.workers[WEB][w].cpu_post = SimDur(cpu * 3 / 10);
                self.cpu_request(sched, WEB, w, pre);
            }
        }
    }

    fn web_cpu_done(&mut self, sched: &mut Scheduler<Ev>, now: SimTime, w: usize) {
        match self.workers[WEB][w].phase {
            Phase::CpuPre => {
                let rtype = self.workers[WEB][w].rtype;
                if self.cfg.mix.types[rtype].uses_backend {
                    self.web_request_backend(sched, now, w);
                } else {
                    self.web_respond(sched, now, w);
                }
            }
            Phase::CpuPost => self.web_respond(sched, now, w),
            other => panic!("httpd worker {w} CpuDone in phase {other:?}"),
        }
    }

    /// Acquires an upstream connection to the app tier — per-request
    /// load balancing over the app replicas, through the shared
    /// connection pool when one is configured — and sends the backend
    /// request, or parks the worker until a pooled connection frees up.
    fn web_request_backend(&mut self, sched: &mut Scheduler<Ev>, now: SimTime, w: usize) {
        let replica = self.pick_replica(APP);
        let app_node = self.node_of(APP, replica);
        let web_node = self.workers[WEB][w].node;
        if self.cfg.spec.pool.is_some() {
            match self.pool_checkout(web_node, app_node, w) {
                Some(conn) => self.web_send_backend(sched, now, w, conn),
                None => self.workers[WEB][w].phase = Phase::PoolWait,
            }
        } else {
            // The paper's behaviour: a fresh connection per request.
            let port = self.ports[web_node].next_port();
            let conn = self.open_conn(
                web_node,
                app_node,
                Addr::new(self.node_ips[web_node], port),
                Addr::new(self.node_ips[app_node], self.cfg.spec.app.port),
            );
            self.lb_open[APP][replica] += 1;
            self.web_send_backend(sched, now, w, conn);
        }
    }

    /// Checks a pooled connection out of the (web node, app node) pool,
    /// creating one if the pool is below capacity; `None` queues the
    /// worker.
    fn pool_checkout(&mut self, web_node: usize, app_node: usize, w: usize) -> Option<u64> {
        let cap = self.cfg.spec.pool.expect("pool configured").connections;
        let pool = self.pools.entry((web_node, app_node)).or_default();
        if let Some(conn) = pool.free.pop() {
            return Some(conn);
        }
        if pool.created >= cap {
            pool.waiters.push_back(w);
            return None;
        }
        pool.created += 1;
        let port = self.ports[web_node].next_port();
        let conn = self.open_conn(
            web_node,
            app_node,
            Addr::new(self.node_ips[web_node], port),
            Addr::new(self.node_ips[app_node], self.cfg.spec.app.port),
        );
        self.conns[conn as usize].persistent = true;
        let (_, replica) = self.tier_of_node(app_node);
        self.lb_open[APP][replica] += 1;
        Some(conn)
    }

    /// Sends the worker's pending backend request over `conn`. With
    /// pooling, consecutive requests of different httpd processes reuse
    /// the same connection — the entity-reuse stress the pool exists
    /// for.
    fn web_send_backend(&mut self, sched: &mut Scheduler<Ev>, now: SimTime, w: usize, conn: u64) {
        let rtype = self.workers[WEB][w].rtype;
        let req = self.workers[WEB][w].req;
        self.conns[conn as usize].opener = Attach::Worker(WEB, w);
        self.conns[conn as usize]
            .fwd_reqs
            .push_back((req.unwrap_or(0), rtype));
        let size = self.sample(self.cfg.mix.types[rtype].backend_req_size);
        self.workers[WEB][w].phase = Phase::AwaitResult;
        self.workers[WEB][w].reading = Some((conn, Dir::Rev));
        self.send_message(sched, now, conn, Dir::Fwd, size, req, Some((WEB, w)), None);
    }

    fn web_result_done(&mut self, sched: &mut Scheduler<Ev>, now: SimTime, w: usize) {
        if let Some((conn, Dir::Rev)) = self.workers[WEB][w].reading.take() {
            self.backend_conn_done(sched, now, conn);
        }
        self.workers[WEB][w].phase = Phase::CpuPost;
        let post = self.workers[WEB][w].cpu_post;
        self.cpu_request(sched, WEB, w, post);
    }

    /// The backend response is fully read: a pooled connection returns
    /// to its pool (or hands off to the next queued worker directly); a
    /// per-request connection is abandoned and its in-flight count
    /// drops.
    fn backend_conn_done(&mut self, sched: &mut Scheduler<Ev>, now: SimTime, conn: u64) {
        let (src_node, dst_node, persistent) = {
            let c = &self.conns[conn as usize];
            (c.src_node, c.dst_node, c.persistent)
        };
        let (_, replica) = self.tier_of_node(dst_node);
        if !persistent {
            self.lb_open[APP][replica] -= 1;
            return;
        }
        let pool = self
            .pools
            .get_mut(&(src_node, dst_node))
            .expect("pooled conn has a pool");
        match pool.waiters.pop_front() {
            Some(next) => self.web_send_backend(sched, now, next, conn),
            None => pool.free.push(conn),
        }
    }

    fn web_respond(&mut self, sched: &mut Scheduler<Ev>, now: SimTime, w: usize) {
        let client_conn = self.clients_conn_of_web_worker(w);
        let rtype = self.workers[WEB][w].rtype;
        let req = self.workers[WEB][w].req;
        let size = self.sample(self.cfg.mix.types[rtype].page_size);
        self.send_message(
            sched,
            now,
            client_conn,
            Dir::Rev,
            size,
            req,
            Some((WEB, w)),
            None,
        );
        let wk = &mut self.workers[WEB][w];
        wk.phase = Phase::Idle;
        wk.req = None;
        wk.reading = None;
        wk.conn = None;
    }

    fn clients_conn_of_web_worker(&self, w: usize) -> u64 {
        self.clients[w].conn
    }

    // ----- JBoss (tier 1) --------------------------------------------------

    fn app_conn_arrival(&mut self, sched: &mut Scheduler<Ev>, now: SimTime, conn: u64) {
        if !self.conns[conn as usize].pool_queued {
            self.conns[conn as usize].pool_queued = true;
            let (_, replica) = self.tier_of_node(self.conns[conn as usize].dst_node);
            if self.thread_pool[replica].acquire(conn) {
                self.app_start_worker(sched, now, conn);
            }
        }
        // While queued in the pool the bytes simply buffer; the thread
        // reads them after ConnSetup.
    }

    fn app_start_worker(&mut self, sched: &mut Scheduler<Ev>, now: SimTime, conn: u64) {
        let _ = now;
        let (_, replica) = self.tier_of_node(self.conns[conn as usize].dst_node);
        let w = self.app_free[replica]
            .pop()
            .expect("connector pool grants never exceed workers");
        self.conns[conn as usize].acceptor = Attach::Worker(APP, w);
        let setup = self.sample_dur(self.cfg.spec.conn_setup);
        let wk = &mut self.workers[APP][w];
        wk.phase = Phase::ConnSetup;
        wk.conn = Some(conn);
        wk.reading = Some((conn, Dir::Fwd));
        wk.epoch += 1;
        let epoch = wk.epoch;
        sched.after(
            setup,
            Ev::Delay {
                tier: APP,
                worker: w,
                epoch,
            },
        );
    }

    fn app_continue_recv(&mut self, sched: &mut Scheduler<Ev>, now: SimTime, w: usize) {
        let r = self.worker_read(now, APP, w);
        if r.messages_completed == 0 {
            return;
        }
        let conn = self.workers[APP][w].conn.expect("attached");
        let (req, rtype) = self.conns[conn as usize]
            .fwd_reqs
            .pop_front()
            .expect("backend request had a registered id");
        let queries = self.cfg.mix.types[rtype].queries;
        let total_cpu = self.sample(self.cfg.mix.types[rtype].java_cpu);
        let (pre, mid, post) = split_cpu(total_cpu, queries);
        let wk = &mut self.workers[APP][w];
        wk.req = Some(req);
        wk.rtype = rtype;
        wk.queries_left = queries;
        wk.cpu_mid = mid;
        wk.cpu_post = post;
        wk.phase = Phase::CpuPre;
        self.cpu_request(sched, APP, w, pre);
    }

    fn app_cpu_done(&mut self, sched: &mut Scheduler<Ev>, now: SimTime, w: usize) {
        match self.workers[APP][w].phase {
            Phase::SetupCpu => {
                self.workers[APP][w].phase = Phase::RecvRequest;
                self.app_continue_recv(sched, now, w);
            }
            Phase::CpuPre => {
                if let Some(delay) = self.cfg.spec.ejb_delay().copied() {
                    let d = self.sample_dur(delay);
                    let wk = &mut self.workers[APP][w];
                    wk.phase = Phase::EjbDelay;
                    wk.epoch += 1;
                    let epoch = wk.epoch;
                    sched.after(
                        d,
                        Ev::Delay {
                            tier: APP,
                            worker: w,
                            epoch,
                        },
                    );
                } else {
                    self.app_next_step(sched, now, w);
                }
            }
            Phase::CpuMid => self.app_send_query(sched, now, w),
            Phase::CpuPost => self.app_respond(sched, now, w),
            other => panic!("java worker {w} CpuDone in phase {other:?}"),
        }
    }

    /// After pre-CPU (and any EJB delay): first query or straight to the
    /// response.
    fn app_next_step(&mut self, sched: &mut Scheduler<Ev>, now: SimTime, w: usize) {
        if self.workers[APP][w].queries_left > 0 {
            self.app_send_query(sched, now, w);
        } else {
            self.app_respond(sched, now, w);
        }
    }

    fn app_send_query(&mut self, sched: &mut Scheduler<Ev>, now: SimTime, w: usize) {
        let req = self.workers[APP][w].req;
        let rtype = self.workers[APP][w].rtype;
        self.workers[APP][w].queries_left -= 1;
        let conn = match self.workers[APP][w].mysql_conn {
            Some(c) => c,
            None => {
                // Per-connection load balancing over the db replicas:
                // the worker's persistent mysql connection pins to one.
                let dbr = self.pick_replica(DB);
                let db_node = self.node_of(DB, dbr);
                let app_node = self.workers[APP][w].node;
                let port = self.ports[app_node].next_port();
                let c = self.open_conn(
                    app_node,
                    db_node,
                    Addr::new(self.node_ips[app_node], port),
                    Addr::new(self.node_ips[db_node], self.cfg.spec.db.port),
                );
                self.lb_open[DB][dbr] += 1;
                self.conns[c as usize].opener = Attach::Worker(APP, w);
                // A dedicated mysqld connection thread on that replica
                // services this connection for its lifetime.
                let dbw = self.db_worker_for_conn(c);
                self.conns[c as usize].acceptor = Attach::Worker(DB, dbw);
                self.workers[APP][w].mysql_conn = Some(c);
                c
            }
        };
        let size = self.sample(self.cfg.mix.types[rtype].query_size);
        self.conns[conn as usize]
            .fwd_reqs
            .push_back((req.unwrap_or(0), rtype));
        self.workers[APP][w].phase = Phase::AwaitResult;
        self.workers[APP][w].reading = Some((conn, Dir::Rev));
        self.send_message(sched, now, conn, Dir::Fwd, size, req, Some((APP, w)), None);
    }

    fn db_worker_for_conn(&mut self, conn: u64) -> usize {
        // One mysqld thread per connection on the replica the
        // connection targets; find a never-used slot there.
        let (_, replica) = self.tier_of_node(self.conns[conn as usize].dst_node);
        let per = self.cfg.spec.db.workers;
        let base = replica * per;
        let idx = self.workers[DB][base..base + per]
            .iter()
            .position(|wk| wk.conn.is_none() && wk.phase == Phase::Idle && wk.reading.is_none())
            .map(|i| base + i)
            .expect("mysqld thread-per-connection pool exhausted");
        self.workers[DB][idx].conn = Some(u64::MAX); // reserved marker, set on arrival
        idx
    }

    fn app_result_done(&mut self, sched: &mut Scheduler<Ev>, _now: SimTime, w: usize) {
        if self.workers[APP][w].queries_left > 0 {
            self.workers[APP][w].phase = Phase::CpuMid;
            let mid = self.workers[APP][w].cpu_mid;
            self.cpu_request(sched, APP, w, mid);
        } else {
            self.workers[APP][w].phase = Phase::CpuPost;
            let post = self.workers[APP][w].cpu_post;
            self.cpu_request(sched, APP, w, post);
        }
    }

    fn app_respond(&mut self, sched: &mut Scheduler<Ev>, now: SimTime, w: usize) {
        let conn = self.workers[APP][w].conn.expect("attached");
        let req = self.workers[APP][w].req;
        let rtype = self.workers[APP][w].rtype;
        let size = self.sample(self.cfg.mix.types[rtype].page_size);
        self.send_message(sched, now, conn, Dir::Rev, size, req, Some((APP, w)), None);
        let wk = &mut self.workers[APP][w];
        wk.req = None;
        wk.reading = None;
        wk.phase = Phase::Linger;
        wk.epoch += 1;
        let epoch = wk.epoch;
        // The connector thread stays pinned to its (now idle) keep-alive
        // connection until the keep-alive window expires -- the classic
        // thread-per-connection pathology behind Fig. 15/16. Past the
        // saturation knee the connector also churns on its backlog
        // (epoll scans, context switches), recycling threads slightly
        // slower -- the mechanism behind the paper's throughput decline
        // at 1000 clients (Fig. 8). The stretch is capped so overload
        // degrades gently instead of collapsing.
        let replica = self.workers[APP][w].replica;
        let backlog = self.thread_pool[replica].queue_len().min(250) as u64;
        let linger = self.cfg.spec.keepalive_linger;
        let linger = SimDur(linger.as_nanos() + linger.as_nanos() * backlog / 1500);
        sched.after(linger, Ev::LingerCheck { worker: w, epoch });
    }

    /// A lingering connector thread's keep-alive window expired: detach
    /// the connection (a pooled connection's next request then re-enters
    /// the connector queue — possibly dispatched to a *different*
    /// thread, the entity-reuse the pool scenario stresses) and recycle
    /// the thread.
    fn app_release_thread(&mut self, sched: &mut Scheduler<Ev>, now: SimTime, w: usize) {
        let replica = self.workers[APP][w].replica;
        if let Some(conn) = self.workers[APP][w].conn.take() {
            self.conns[conn as usize].acceptor = Attach::None;
            self.conns[conn as usize].pool_queued = false;
        }
        self.workers[APP][w].reading = None;
        self.workers[APP][w].phase = Phase::Idle;
        self.app_free[replica].push(w);
        if let Some(conn) = self.thread_pool[replica].release() {
            self.app_start_worker(sched, now, conn);
        }
    }

    // ----- MySQL (tier 2) ----------------------------------------------------

    fn db_on_query_data(&mut self, sched: &mut Scheduler<Ev>, now: SimTime, conn: u64) {
        let Attach::Worker(_, w) = self.conns[conn as usize].acceptor else {
            return;
        };
        match self.workers[DB][w].phase {
            Phase::Idle => {
                let wk = &mut self.workers[DB][w];
                wk.conn = Some(conn);
                wk.reading = Some((conn, Dir::Fwd));
                wk.phase = Phase::TokenWait;
                let replica = self.workers[DB][w].replica;
                if self.db_tokens[replica].acquire(w) {
                    self.db_dispatch(sched, now, w);
                }
            }
            Phase::RecvRequest => self.db_continue_recv(sched, now, w),
            _ => {}
        }
    }

    fn db_dispatch(&mut self, sched: &mut Scheduler<Ev>, _now: SimTime, w: usize) {
        let d = self.sample_dur(self.cfg.spec.db_dispatch);
        let wk = &mut self.workers[DB][w];
        wk.phase = Phase::DispatchDelay;
        wk.epoch += 1;
        let epoch = wk.epoch;
        sched.after(
            d,
            Ev::Delay {
                tier: DB,
                worker: w,
                epoch,
            },
        );
    }

    /// After the dispatch delay: if the query needs the locked `items`
    /// table, the worker blocks *before reading* (the table lock stalls
    /// the session, delaying the kernel recv — which is why the paper's
    /// java2mysqld percentage grows under DataBase_Lock).
    fn db_after_dispatch(&mut self, sched: &mut Scheduler<Ev>, now: SimTime, w: usize) {
        let conn = self.workers[DB][w].conn.expect("attached");
        let locked = self.cfg.spec.db_lock().is_some()
            && self.conns[conn as usize]
                .fwd_reqs
                .front()
                .is_some_and(|&(_, rtype)| self.cfg.mix.types[rtype].touches_items);
        if locked {
            self.workers[DB][w].phase = Phase::LockWait;
            let replica = self.workers[DB][w].replica;
            if self.items_gate[replica].acquire(w) {
                self.db_locked_recv(sched, now, w);
            }
        } else {
            self.workers[DB][w].phase = Phase::RecvRequest;
            self.db_continue_recv(sched, now, w);
        }
    }

    /// Lock granted: read the query and run it with the extra hold.
    fn db_locked_recv(&mut self, sched: &mut Scheduler<Ev>, now: SimTime, w: usize) {
        self.workers[DB][w].holds_lock = true;
        self.workers[DB][w].phase = Phase::RecvRequest;
        self.db_continue_recv(sched, now, w);
    }

    fn db_continue_recv(&mut self, sched: &mut Scheduler<Ev>, now: SimTime, w: usize) {
        let r = self.worker_read(now, DB, w);
        if r.messages_completed == 0 {
            return;
        }
        let conn = self.workers[DB][w].conn.expect("attached");
        let (req, rtype) = self.conns[conn as usize]
            .fwd_reqs
            .pop_front()
            .expect("query had a registered id");
        let cpu = self.sample(self.cfg.mix.types[rtype].mysql_cpu);
        let wk = &mut self.workers[DB][w];
        wk.req = Some(req);
        wk.rtype = rtype;
        wk.pending_cpu = SimDur(cpu);
        if self.workers[DB][w].holds_lock {
            let hold = self
                .cfg
                .spec
                .db_lock()
                .copied()
                .expect("lock held implies fault");
            let extra = self.sample_dur(hold);
            self.workers[DB][w].pending_cpu += extra;
        }
        self.db_run_query(sched, now, w);
    }

    fn db_run_query(&mut self, sched: &mut Scheduler<Ev>, _now: SimTime, w: usize) {
        let cpu = self.workers[DB][w].pending_cpu;
        self.workers[DB][w].phase = Phase::CpuPre;
        self.cpu_request(sched, DB, w, cpu);
    }

    fn db_cpu_done(&mut self, sched: &mut Scheduler<Ev>, now: SimTime, w: usize) {
        assert_eq!(self.workers[DB][w].phase, Phase::CpuPre);
        let conn = self.workers[DB][w].conn.expect("attached");
        let req = self.workers[DB][w].req;
        let rtype = self.workers[DB][w].rtype;
        let size = self.sample(self.cfg.mix.types[rtype].result_size);
        self.send_message(sched, now, conn, Dir::Rev, size, req, Some((DB, w)), None);
        let replica = self.workers[DB][w].replica;
        if self.workers[DB][w].holds_lock {
            self.workers[DB][w].holds_lock = false;
            if let Some(w2) = self.items_gate[replica].release() {
                self.db_locked_recv(sched, now, w2);
            }
        }
        let wk = &mut self.workers[DB][w];
        wk.req = None;
        wk.phase = Phase::Idle;
        wk.reading = Some((conn, Dir::Fwd));
        if let Some(w2) = self.db_tokens[replica].release() {
            self.db_dispatch(sched, now, w2);
        }
        // If the next query already arrived (should not for in-model
        // clients, but keep the machine total):
        if self.conns[conn as usize].fwd_buf.readable() > 0 {
            self.db_on_query_data(sched, now, conn);
        }
    }

    // ----- noise -----------------------------------------------------------

    fn noise_ssh(&mut self, sched: &mut Scheduler<Ev>, now: SimTime) {
        if now >= self.session_end {
            return;
        }
        let program: Arc<str> = "sshd".into();
        let peer = EndpointV4::new(Ipv4Addr::new(172, 16, 0, 50), 52_000);
        let local = EndpointV4::new(self.node_ips[WEB], 22);
        let uid1 = self.probe.log(
            WEB,
            now,
            &program,
            500,
            500,
            RawOp::Receive,
            peer,
            local,
            96,
        );
        self.truth.note_noise(uid1);
        let uid2 = self.probe.log(
            WEB,
            SimTime(now.as_nanos() + 150_000),
            &program,
            500,
            500,
            RawOp::Send,
            local,
            peer,
            128,
        );
        self.truth.note_noise(uid2);
        let gap = self.noise_gap(self.cfg.noise.ssh_msgs_per_sec / 2.0);
        sched.after(gap, Ev::NoiseSsh);
    }

    fn noise_mysql_tick(&mut self, sched: &mut Scheduler<Ev>, now: SimTime) {
        if now >= self.session_end {
            return;
        }
        let conn = self.noise_conn.expect("noise conn exists");
        let size = 80 + (self.sample(Dist::Uniform { lo: 0.0, hi: 160.0 }));
        self.send_message(sched, now, conn, Dir::Fwd, size, None, None, None);
        let gap = self.noise_gap(self.cfg.noise.mysql_msgs_per_sec / 2.0);
        sched.after(gap, Ev::NoiseMysql);
    }

    fn noise_db_arrival(&mut self, sched: &mut Scheduler<Ev>, now: SimTime, conn: u64, tid: u32) {
        if !self.conns[conn as usize].fwd_buf.front_message_complete() {
            return;
        }
        let r = self.conns[conn as usize].fwd_buf.read();
        let program = Arc::clone(&self.programs[DB]);
        let db_node = self.conns[conn as usize].dst_node;
        if self.probe.enabled() && r.bytes > 0 {
            self.log_receive(
                now,
                conn,
                Dir::Fwd,
                &r,
                db_node,
                program,
                3000,
                tid,
                None,
                None,
            );
        }
        // Respond with a small result after a fixed 300us "query".
        let at = SimTime(now.as_nanos() + 300_000);
        let size = 200 + self.sample(Dist::Uniform { lo: 0.0, hi: 700.0 });
        self.send_message(
            sched,
            at.max(now),
            conn,
            Dir::Rev,
            size,
            None,
            None,
            Some(tid),
        );
    }

    // ----- event dispatch ----------------------------------------------------

    fn on_seg(
        &mut self,
        sched: &mut Scheduler<Ev>,
        now: SimTime,
        conn: u64,
        dir: Dir,
        offset: u64,
        bytes: u64,
    ) {
        let ing = match self.cfg.spec.capture {
            None => {
                let ing = self.conns[conn as usize].buf(dir).on_segment(offset, bytes);
                if ing.duplicate > 0 {
                    // The kernel discards retransmitted ranges before
                    // the application ever reads them; the probe's
                    // sniffer lane still logs the arrival, marked
                    // `retrans`.
                    self.log_duplicate_arrival(now, conn, dir, ing.duplicate, None);
                }
                ing
            }
            Some(cap) => {
                // v2 sniffer lane: one retrans record per contiguous
                // duplicated sub-range, carrying its seq= offset —
                // logged only once the range has been handed to the
                // application (a duplicate of still-reassembling data
                // is indistinguishable from reordering at capture
                // time, so the frontend absorbs it).
                let mut dups = Vec::new();
                let ing = self.conns[conn as usize]
                    .buf(dir)
                    .on_segment_ranges(offset, bytes, &mut dups);
                for (s, l) in dups {
                    let logged_hwm = {
                        let c = &self.conns[conn as usize];
                        match dir {
                            Dir::Fwd => c.fwd_read_off,
                            Dir::Rev => c.rev_read_off,
                        }
                    };
                    if s + l > logged_hwm {
                        continue; // absorbed into the in-flight message
                    }
                    if cap.drop > 0.0 && self.all_segments_missed(s, l, cap.drop) {
                        self.probe.note_capture_dropped();
                        continue;
                    }
                    self.log_duplicate_arrival(now, conn, dir, l, Some(s));
                }
                ing
            }
        };
        if ing.fresh == 0 {
            return;
        }
        let side = match dir {
            Dir::Fwd => self.conns[conn as usize].acceptor,
            Dir::Rev => self.conns[conn as usize].opener,
        };
        match side {
            Attach::Client(ci) => {
                if self.conns[conn as usize].rev_buf.front_message_complete() {
                    let _ = self.conns[conn as usize].rev_buf.read();
                    self.client_complete(sched, now, ci);
                }
            }
            Attach::NoiseDb(tid) => self.noise_db_arrival(sched, now, conn, tid),
            Attach::Worker(tier, w) => match (tier, dir) {
                (WEB, Dir::Fwd) => self.web_on_request_data(sched, now, conn),
                (DB, Dir::Fwd) => self.db_on_query_data(sched, now, conn),
                (APP, Dir::Fwd) => {
                    match self.workers[APP][w].phase {
                        // Request chunks arriving after the connector
                        // thread started reading.
                        Phase::RecvRequest => self.app_continue_recv(sched, now, w),
                        // A pooled connection's next request lands while
                        // its previous thread still lingers on the
                        // keep-alive: hot reuse, no re-dispatch.
                        Phase::Linger => {
                            let wk = &mut self.workers[APP][w];
                            wk.epoch += 1; // cancels the LingerCheck
                            wk.phase = Phase::RecvRequest;
                            wk.reading = Some((conn, Dir::Fwd));
                            self.app_continue_recv(sched, now, w);
                        }
                        _ => {}
                    }
                }
                _ => {
                    // A worker blocked on a response reads eagerly,
                    // producing one RECEIVE record per arrival batch.
                    if self.workers[tier][w].phase == Phase::AwaitResult
                        && self.workers[tier][w].reading == Some((conn, dir))
                    {
                        let r = self.worker_read(now, tier, w);
                        if r.messages_completed > 0 {
                            match tier {
                                WEB => self.web_result_done(sched, now, w),
                                APP => self.app_result_done(sched, now, w),
                                _ => unreachable!("only web/app await results"),
                            }
                        }
                    }
                }
            },
            Attach::None => {
                let dst = self.conns[conn as usize].dst_node;
                if dir == Dir::Fwd && dst < self.service_nodes && self.tier_of_node(dst).0 == APP {
                    self.app_conn_arrival(sched, now, conn);
                }
            }
        }
    }

    /// Logs the sniffer-visible record for a duplicate (retransmitted)
    /// byte range arriving at a traced node. The record is marked
    /// `retrans` (and, in the v2 lane, carries the range's `seq=`
    /// offset); the correlator is expected to discard it, so ground
    /// truth counts it as noise.
    fn log_duplicate_arrival(
        &mut self,
        now: SimTime,
        conn: u64,
        dir: Dir,
        dup_bytes: u64,
        seq: Option<u64>,
    ) {
        if !self.probe.enabled() {
            return;
        }
        let (rx_node, side, src, dst) = {
            let c = &self.conns[conn as usize];
            let (s, d) = c.channel(dir);
            match dir {
                Dir::Fwd => (c.dst_node, c.acceptor, s, d),
                Dir::Rev => (c.src_node, c.opener, s, d),
            }
        };
        if rx_node >= self.service_nodes {
            return; // untraced receiver (client emulator / noise host)
        }
        let (program, pid, tid) = match side {
            Attach::Worker(t, w) => (
                Arc::clone(&self.programs[t]),
                self.workers[t][w].pid,
                self.workers[t][w].tid,
            ),
            Attach::NoiseDb(tid) => (Arc::clone(&self.programs[DB]), 3000, tid),
            // Not yet dispatched to a thread: the arrival is handled in
            // softirq context, which a sniffer attributes to no thread.
            Attach::None | Attach::Client(_) => {
                let (t, _) = self.tier_of_node(rx_node);
                (Arc::clone(&self.programs[t]), 0, 0)
            }
        };
        if let Some(seq) = seq {
            self.probe.set_seq(seq);
        }
        let uid = self.probe.log_retrans(
            rx_node,
            now,
            &program,
            pid,
            tid,
            RawOp::Receive,
            EndpointV4::new(src.ip, src.port),
            EndpointV4::new(dst.ip, dst.port),
            dup_bytes,
        );
        self.truth.note_noise(uid);
    }

    fn on_delay(
        &mut self,
        sched: &mut Scheduler<Ev>,
        now: SimTime,
        tier: usize,
        w: usize,
        epoch: u64,
    ) {
        if self.workers[tier][w].epoch != epoch {
            return;
        }
        match (tier, self.workers[tier][w].phase) {
            (APP, Phase::ConnSetup) => {
                self.workers[APP][w].phase = Phase::SetupCpu;
                let cpu = self.sample_dur(self.cfg.spec.conn_setup_cpu);
                self.cpu_request(sched, APP, w, cpu);
            }
            (APP, Phase::EjbDelay) => {
                self.app_next_step(sched, now, w);
            }
            (DB, Phase::DispatchDelay) => self.db_after_dispatch(sched, now, w),
            (t, p) => panic!("stray delay for tier {t} worker {w} in {p:?}"),
        }
    }

    /// Fraction of completed requests (diagnostics).
    pub fn completion_ratio(&self) -> f64 {
        let issued = self.metrics.issued.max(1);
        self.metrics.completed as f64 / issued as f64
    }
}

/// Splits total app-tier CPU into pre / per-query mid / post segments.
fn split_cpu(total_ns: u64, queries: u32) -> (SimDur, SimDur, SimDur) {
    if queries == 0 {
        return (SimDur(total_ns), SimDur::ZERO, SimDur::ZERO);
    }
    let pre = total_ns * 4 / 10;
    let post = total_ns * 2 / 10;
    let mid_total = total_ns - pre - post;
    (
        SimDur(pre),
        SimDur(mid_total / queries as u64),
        SimDur(post),
    )
}

impl World for RubisWorld {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, sched: &mut Scheduler<Ev>) {
        match event {
            Ev::ClientStart(ci) => self.client_issue(sched, now, ci),
            Ev::ClientThink(ci) => self.client_issue(sched, now, ci),
            Ev::Seg {
                conn,
                dir,
                offset,
                bytes,
            } => self.on_seg(sched, now, conn, dir, offset, bytes),
            Ev::CpuDone { tier, worker } => {
                let node = self.workers[tier][worker].node;
                self.cpu_release(sched, node);
                match tier {
                    WEB => self.web_cpu_done(sched, now, worker),
                    APP => self.app_cpu_done(sched, now, worker),
                    DB => self.db_cpu_done(sched, now, worker),
                    _ => unreachable!(),
                }
            }
            Ev::Delay {
                tier,
                worker,
                epoch,
            } => self.on_delay(sched, now, tier, worker, epoch),
            Ev::LingerCheck { worker, epoch } => {
                if self.workers[APP][worker].epoch == epoch
                    && self.workers[APP][worker].phase == Phase::Linger
                {
                    self.app_release_thread(sched, now, worker);
                }
            }
            Ev::NoiseSsh => self.noise_ssh(sched, now),
            Ev::NoiseMysql => self.noise_mysql_tick(sched, now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    fn tiny_config(clients: usize) -> WorldConfig {
        WorldConfig {
            spec: ServiceSpec::paper_default(),
            mix: Mix::browse_only(),
            clients,
            phases: Phases::quick(8),
            think: Dist::Exp { mean: 1.5e9 },
            noise: NoiseSpec::none(),
            seed: 42,
        }
    }

    fn run(cfg: WorldConfig) -> RubisWorld {
        RubisWorld::run_to_completion(cfg)
    }

    #[test]
    fn small_run_completes_requests() {
        let w = run(tiny_config(5));
        assert!(w.metrics.completed > 0, "no requests completed");
        assert_eq!(w.metrics.completed, w.truth.completed_count());
        assert!(w.completion_ratio() > 0.99, "in-flight requests must drain");
    }

    #[test]
    fn probe_records_look_like_tcp_trace() {
        let w = run(tiny_config(3));
        let recs = w.probe.into_records();
        assert!(!recs.is_empty());
        // Round-trip through the text format.
        for r in recs.iter().take(50) {
            let line = r.to_string();
            let back = tracer_core::raw::RawRecord::parse_line(&line).unwrap();
            assert_eq!(back.size, r.size);
            assert_eq!(back.hostname, r.hostname);
        }
    }

    #[test]
    fn per_node_records_are_locally_ordered() {
        let w = run(tiny_config(5));
        let streams = w.probe.into_streams();
        assert_eq!(streams.len(), 3);
        for (host, recs) in &streams {
            let sorted = recs.windows(2).all(|p| p[0].ts <= p[1].ts);
            // Send chunk staggering can reorder across events by a hair;
            // allow tiny inversions only.
            if !sorted {
                let max_inv = recs
                    .windows(2)
                    .filter(|p| p[0].ts > p[1].ts)
                    .map(|p| p[0].ts.as_nanos() - p[1].ts.as_nanos())
                    .max()
                    .unwrap();
                assert!(
                    max_inv < 1_000_000,
                    "{host}: inversion {max_inv}ns too large"
                );
            }
        }
    }

    #[test]
    fn every_request_touches_all_three_tiers_when_backend() {
        let w = run(tiny_config(4));
        let mut by_req: HashMap<u64, Vec<Arc<str>>> = HashMap::new();
        let truth: Vec<_> = w.truth.requests().cloned().collect();
        let recs = w.probe.into_records();
        let uid_host: HashMap<u64, Arc<str>> = recs
            .iter()
            .map(|r| (r.tag, Arc::clone(&r.hostname)))
            .collect();
        for t in truth {
            if t.completed.is_none() {
                continue;
            }
            let hosts = by_req.entry(t.id).or_default();
            for uid in &t.records {
                if let Some(h) = uid_host.get(uid) {
                    hosts.push(Arc::clone(h));
                }
            }
        }
        assert!(by_req.values().any(|hosts| {
            hosts.iter().any(|h| &**h == "web1")
                && hosts.iter().any(|h| &**h == "app1")
                && hosts.iter().any(|h| &**h == "db1")
        }));
    }

    #[test]
    fn disabled_probe_produces_no_records() {
        let mut cfg = tiny_config(3);
        cfg.spec.tracing = false;
        let w = run(cfg);
        assert!(w.metrics.completed > 0);
        assert_eq!(w.probe.total(), 0);
    }

    #[test]
    fn noise_generators_emit_untagged_records() {
        let mut cfg = tiny_config(3);
        cfg.noise = NoiseSpec {
            ssh_msgs_per_sec: 50.0,
            mysql_msgs_per_sec: 50.0,
        };
        let w = run(cfg);
        assert!(
            w.truth.noise_records() > 10,
            "noise={}",
            w.truth.noise_records()
        );
    }

    #[test]
    fn max_threads_one_still_drains() {
        let mut cfg = tiny_config(6);
        cfg.spec.max_threads = 1;
        let w = run(cfg);
        assert!(w.completion_ratio() > 0.99);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(tiny_config(4));
        let b = run(tiny_config(4));
        assert_eq!(a.metrics.completed, b.metrics.completed);
        let ra = a.probe.into_records();
        let rb = b.probe.into_records();
        assert_eq!(ra.len(), rb.len());
        assert_eq!(ra.first().map(|r| r.ts), rb.first().map(|r| r.ts));
    }

    #[test]
    fn faults_change_behaviour() {
        use crate::spec::Fault;
        let base = run(tiny_config(4)).metrics.rt_mean();
        let mut cfg = tiny_config(4);
        cfg.spec = cfg.spec.with_fault(Fault::EjbDelay {
            delay: Dist::Constant(120_000_000.0),
        });
        let slow = run(cfg).metrics.rt_mean();
        assert!(
            slow.as_nanos() > base.as_nanos() + 60_000_000,
            "EJB delay must slow requests: {base} -> {slow}"
        );
    }
}
