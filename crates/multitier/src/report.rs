//! Client-observed service metrics: throughput and response time — the
//! quantities of Figs. 8, 12, 13 and 16.

use simnet::{Histogram, OnlineStats, RateSeries, SimDur, SimTime};

use crate::spec::Phases;

/// Running service metrics collected by the world.
#[derive(Debug)]
pub struct ServiceMetrics {
    /// Requests issued by clients.
    pub issued: u64,
    /// Requests completed (response fully received by the client).
    pub completed: u64,
    phases: Phases,
    rt: OnlineStats,
    rt_hist: Histogram,
    completions: RateSeries,
}

impl ServiceMetrics {
    /// Fresh metrics for a session with the given phases.
    pub fn new(phases: Phases) -> Self {
        ServiceMetrics {
            issued: 0,
            completed: 0,
            phases,
            rt: OnlineStats::new(),
            rt_hist: Histogram::new(),
            completions: RateSeries::new(SimDur::from_secs(5)),
        }
    }

    /// Records a request issue.
    pub fn on_issue(&mut self, _now: SimTime) {
        self.issued += 1;
    }

    /// Records a completion with its response time.
    pub fn on_complete(&mut self, now: SimTime, rt: SimDur) {
        self.completed += 1;
        self.rt.push(rt.as_nanos() as f64);
        self.rt_hist.record_dur(rt);
        self.completions.record(now);
    }

    /// Mean response time.
    pub fn rt_mean(&self) -> SimDur {
        SimDur(self.rt.mean() as u64)
    }

    /// Response-time percentile (approximate).
    pub fn rt_quantile(&self, q: f64) -> SimDur {
        SimDur(self.rt_hist.quantile(q) as u64)
    }

    /// Mean throughput over the whole session (requests/second).
    pub fn throughput(&self) -> f64 {
        let dur = self.phases.total().as_secs_f64();
        if dur <= 0.0 {
            0.0
        } else {
            self.completed as f64 / dur
        }
    }

    /// Mean throughput during the steady phase only (requests/second).
    pub fn steady_throughput(&self) -> f64 {
        let from = SimTime::ZERO + self.phases.up;
        let to = from + self.phases.steady;
        self.completions.mean_rate_between(from, to)
    }

    /// The session phases.
    pub fn phases(&self) -> Phases {
        self.phases
    }

    /// A one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "issued={} completed={} tp={:.1}/s steady_tp={:.1}/s rt_mean={} rt_p95={}",
            self.issued,
            self.completed,
            self.throughput(),
            self.steady_throughput(),
            self.rt_mean(),
            self.rt_quantile(0.95),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phases() -> Phases {
        Phases::quick(20) // up 5s, steady 20s, down 2s
    }

    #[test]
    fn counts_and_rt() {
        let mut m = ServiceMetrics::new(phases());
        m.on_issue(SimTime::ZERO);
        m.on_issue(SimTime::ZERO);
        m.on_complete(SimTime(6_000_000_000), SimDur::from_millis(30));
        m.on_complete(SimTime(7_000_000_000), SimDur::from_millis(50));
        assert_eq!(m.issued, 2);
        assert_eq!(m.completed, 2);
        assert_eq!(m.rt_mean(), SimDur::from_millis(40));
        assert!(m.rt_quantile(0.99).as_nanos() >= SimDur::from_millis(45).as_nanos());
    }

    #[test]
    fn steady_throughput_excludes_ramps() {
        let mut m = ServiceMetrics::new(phases());
        // 2 completions in the up-ramp (0-5s), 20 in steady (5-25s).
        m.on_complete(SimTime(1_000_000_000), SimDur::from_millis(10));
        m.on_complete(SimTime(2_000_000_000), SimDur::from_millis(10));
        for i in 0..20 {
            m.on_complete(
                SimTime(5_000_000_000 + i * 1_000_000_000),
                SimDur::from_millis(10),
            );
        }
        let s = m.steady_throughput();
        assert!((s - 1.0).abs() < 0.2, "steady {s}");
        assert!(m.throughput() < s * 1.2);
    }

    #[test]
    fn summary_renders() {
        let m = ServiceMetrics::new(phases());
        let s = m.summary();
        assert!(s.contains("completed=0"));
    }
}
