//! Source fault injection for soak-testing the online daemon.
//!
//! [`write_paced`] replays a rendered `TCP_TRACE` log into a file at a
//! wall-clock pace derived from the records' own timestamps — the shape
//! a real per-node probe log grows in — while injecting faults from a
//! [`FaultPlan`]: write stalls, torn tails flushed mid-record, source
//! restarts (truncate-to-zero), and silent record drops. The returned
//! [`FaultLog`] records exactly what was done so a harness can assert
//! the tailing daemon's counters and recall against it.

use std::io::Write;
use std::path::Path;
use std::time::{Duration, Instant};

/// One scheduled fault, triggered when the writer reaches the record
/// at fraction `at` (in `0.0..=1.0`) of the input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SourceFault {
    /// Pause writing for `millis`; the tailer sees a quiet file and
    /// must keep polling (and must not count the lull as end-of-log
    /// when configured to follow).
    Stall {
        /// Trigger point as a fraction of the record count.
        at: f64,
        /// Stall duration in wall milliseconds.
        millis: u64,
    },
    /// Write only a prefix of the record's bytes, flush, pause for
    /// `millis`, then write the rest: a live EOF lands mid-record and
    /// the tailer must carry the torn tail and retry, not error.
    TornTail {
        /// Trigger point as a fraction of the record count.
        at: f64,
        /// How long the tail stays torn, in wall milliseconds.
        millis: u64,
    },
    /// Truncate the file to zero bytes (the source process restarted)
    /// and keep writing the remaining records into the fresh file. The
    /// tailer must detect the shrink, rewind, and resume. Writing
    /// pauses `settle_millis` on both sides of the cut so a poll-based
    /// tailer drains the old content first and then observes the
    /// shrink before new content grows past its old offset.
    Restart {
        /// Trigger point as a fraction of the record count.
        at: f64,
        /// Quiet period before and after the truncation.
        settle_millis: u64,
    },
    /// Silently skip `count` records (capture loss): the only fault
    /// that removes data, so it is the only one allowed to cost the
    /// daemon recall. Skipped indices land in [`FaultLog::dropped`].
    Drop {
        /// Trigger point as a fraction of the record count.
        at: f64,
        /// How many consecutive records to skip.
        count: usize,
    },
}

impl SourceFault {
    fn at(&self) -> f64 {
        match *self {
            SourceFault::Stall { at, .. }
            | SourceFault::TornTail { at, .. }
            | SourceFault::Restart { at, .. }
            | SourceFault::Drop { at, .. } => at,
        }
    }
}

/// A schedule of faults for one source writer.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// The faults, in any order; each fires once at its trigger point.
    pub faults: Vec<SourceFault>,
}

impl FaultPlan {
    /// A plan with no faults: plain paced replay.
    pub fn none() -> Self {
        FaultPlan::default()
    }
}

/// What a paced writer actually did, for asserting against.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// Records written in full (dropped ones excluded).
    pub records_written: u64,
    /// Bytes written, including any truncated away by a restart.
    pub bytes_written: u64,
    /// Stalls injected.
    pub stalls: u64,
    /// Torn tails injected.
    pub torn_tails: u64,
    /// Restarts (truncations) injected.
    pub restarts: u64,
    /// Input indices of records silently dropped.
    pub dropped: Vec<usize>,
}

impl FaultLog {
    /// Total faults injected.
    pub fn total_faults(&self) -> u64 {
        self.stalls + self.torn_tails + self.restarts + !self.dropped.is_empty() as u64
    }
}

/// Replays `records` — `(timestamp nanos, rendered line)` pairs in
/// timestamp order — into `path`, pacing each record to wall time
/// `(ts - epoch) / speedup` and injecting the plan's faults. Writers
/// for different sources of the same capture share `epoch` (the
/// capture's earliest timestamp) so their wall-clock interleaving
/// mirrors the original one. Blocks until done; callers run one writer
/// per source thread. Every complete record is flushed before the next
/// pacing sleep so a tailer never waits on buffered data.
///
/// # Errors
///
/// Propagates I/O errors on the target file.
pub fn write_paced(
    path: &Path,
    records: &[(u64, String)],
    epoch: u64,
    speedup: f64,
    plan: &FaultPlan,
) -> std::io::Result<FaultLog> {
    let mut log = FaultLog::default();
    // Resolve trigger fractions to indices once; multiple faults may
    // share an index and fire in plan order.
    let n = records.len();
    let triggers: Vec<(usize, SourceFault)> = plan
        .faults
        .iter()
        .map(|f| {
            let i = (f.at().clamp(0.0, 1.0) * n as f64) as usize;
            (i.min(n.saturating_sub(1)), *f)
        })
        .collect();
    let mut file = std::fs::File::create(path)?;
    let start = Instant::now();
    let mut skip = 0usize;
    for (i, (ts, line)) in records.iter().enumerate() {
        // Pace by the record's own timestamp.
        let target = Duration::from_nanos((ts.saturating_sub(epoch) as f64 / speedup) as u64);
        let elapsed = start.elapsed();
        if target > elapsed {
            std::thread::sleep(target - elapsed);
        }
        let mut torn: Option<u64> = None;
        for &(idx, fault) in &triggers {
            if idx != i {
                continue;
            }
            match fault {
                SourceFault::Stall { millis, .. } => {
                    log.stalls += 1;
                    std::thread::sleep(Duration::from_millis(millis));
                }
                SourceFault::TornTail { millis, .. } => {
                    log.torn_tails += 1;
                    torn = Some(millis);
                }
                SourceFault::Restart { settle_millis, .. } => {
                    log.restarts += 1;
                    file.flush()?;
                    std::thread::sleep(Duration::from_millis(settle_millis));
                    file = std::fs::File::create(path)?;
                    std::thread::sleep(Duration::from_millis(settle_millis));
                }
                SourceFault::Drop { count, .. } => {
                    skip = skip.max(count);
                }
            }
        }
        if skip > 0 {
            skip -= 1;
            log.dropped.push(i);
            continue;
        }
        if let Some(millis) = torn {
            let bytes = line.as_bytes();
            let cut = (bytes.len() / 2).max(1);
            file.write_all(&bytes[..cut])?;
            file.flush()?;
            std::thread::sleep(Duration::from_millis(millis));
            file.write_all(&bytes[cut..])?;
        } else {
            file.write_all(line.as_bytes())?;
        }
        file.write_all(b"\n")?;
        file.flush()?;
        log.bytes_written += line.len() as u64 + 1;
        log.records_written += 1;
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(n: usize) -> Vec<(u64, String)> {
        (0..n)
            .map(|i| (i as u64 * 1_000, format!("record number {i}")))
            .collect()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("pt-faults-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn plain_replay_writes_everything_in_order() {
        let recs = corpus(40);
        let path = tmp("plain.log");
        let log = write_paced(&path, &recs, 0, 1e9, &FaultPlan::none()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(log.records_written, 40);
        assert_eq!(log.total_faults(), 0);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 40);
        assert_eq!(lines[0], "record number 0");
        assert_eq!(lines[39], "record number 39");
    }

    #[test]
    fn restart_truncates_and_drop_skips_counted_records() {
        let recs = corpus(40);
        let path = tmp("faulty.log");
        let plan = FaultPlan {
            faults: vec![
                SourceFault::Drop { at: 0.25, count: 3 },
                SourceFault::Restart {
                    at: 0.5,
                    settle_millis: 0,
                },
                SourceFault::Stall {
                    at: 0.75,
                    millis: 1,
                },
                SourceFault::TornTail { at: 0.9, millis: 1 },
            ],
        };
        let log = write_paced(&path, &recs, 0, 1e9, &plan).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        // Post-restart file holds only records from index 20 on.
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.first(), Some(&"record number 20"));
        assert_eq!(lines.last(), Some(&"record number 39"));
        assert_eq!(lines.len(), 20);
        // Dropped records 10..13 never appeared anywhere.
        assert_eq!(log.dropped, vec![10, 11, 12]);
        assert_eq!(log.records_written, 37);
        assert_eq!((log.stalls, log.torn_tails, log.restarts), (1, 1, 1));
        assert_eq!(log.total_faults(), 4);
    }
}
