//! The simulated `TCP_TRACE` probe (§3.1).
//!
//! Emits one [`RawRecord`] per simulated kernel `tcp_sendmsg` /
//! `tcp_recvmsg` call on a **traced** node, timestamped with that node's
//! *local* (skewed, drifting) clock. Byte-for-byte the same schema the
//! paper's SystemTap module logs, so the correlator cannot tell the
//! difference.
//!
//! Records carry an opaque ground-truth tag (a globally unique record
//! id); the correlator never reads it, the accuracy harness does (§5.2).

use std::sync::Arc;

use simnet::{ClockModel, SimTime};
use tracer_core::raw::{RawOp, RawRecord};
use tracer_core::{EndpointV4, LocalTime};

/// A traced node's identity for the probe.
#[derive(Debug, Clone)]
pub struct ProbedNode {
    /// Hostname written into records.
    pub hostname: Arc<str>,
    /// The node's clock.
    pub clock: ClockModel,
}

/// Collects raw records per node, in local-timestamp order.
#[derive(Debug)]
pub struct ProbeSink {
    nodes: Vec<ProbedNode>,
    records: Vec<Vec<RawRecord>>,
    next_uid: u64,
    enabled: bool,
    total: u64,
    /// `TCP_TRACE v2` stream offset for the **next** logged record, set
    /// by the sniffer-based capture frontend via [`ProbeSink::set_seq`]
    /// and consumed by the next `log`/`log_retrans` call.
    next_seq: Option<u64>,
    /// Records the sniffer capture frontend missed entirely (partial
    /// capture): never logged, uid 0, excluded from ground truth.
    capture_dropped: u64,
}

impl ProbeSink {
    /// A sink for the given traced nodes.
    pub fn new(nodes: Vec<ProbedNode>, enabled: bool) -> Self {
        let records = nodes.iter().map(|_| Vec::new()).collect();
        ProbeSink {
            nodes,
            records,
            next_uid: 1,
            enabled,
            total: 0,
            next_seq: None,
            capture_dropped: 0,
        }
    }

    /// Whether the probe is armed (disabled probes cost nothing and log
    /// nothing — the Fig. 12/13 baseline).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Total records logged.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Arms the v2 `seq=` attribute for the next logged record (the
    /// sniffer lane's stream byte offset). One-shot: consumed by the
    /// next `log`/`log_retrans` call.
    pub fn set_seq(&mut self, seq: u64) {
        self.next_seq = Some(seq);
    }

    /// Counts a record the sniffer capture frontend missed entirely
    /// (every wire segment overlapping its byte range was dropped).
    pub fn note_capture_dropped(&mut self) {
        if self.enabled {
            self.capture_dropped += 1;
            // A dropped record must not leak its armed seq to the next.
            self.next_seq = None;
        }
    }

    /// Records lost to partial capture.
    pub fn capture_dropped(&self) -> u64 {
        self.capture_dropped
    }

    /// Logs one kernel send/receive on node `node_idx` and returns the
    /// record's ground-truth uid (0 when the probe is disabled).
    #[allow(clippy::too_many_arguments)]
    pub fn log(
        &mut self,
        node_idx: usize,
        now: SimTime,
        program: &Arc<str>,
        pid: u32,
        tid: u32,
        op: RawOp,
        src: EndpointV4,
        dst: EndpointV4,
        size: u64,
    ) -> u64 {
        self.log_inner(node_idx, now, program, pid, tid, op, src, dst, size, false)
    }

    /// Logs the sniffer-lane record for a retransmitted (duplicate)
    /// byte range: same schema, marked with the `retrans` attribute the
    /// capture frontend derives from TCP sequence numbers.
    #[allow(clippy::too_many_arguments)]
    pub fn log_retrans(
        &mut self,
        node_idx: usize,
        now: SimTime,
        program: &Arc<str>,
        pid: u32,
        tid: u32,
        op: RawOp,
        src: EndpointV4,
        dst: EndpointV4,
        size: u64,
    ) -> u64 {
        self.log_inner(node_idx, now, program, pid, tid, op, src, dst, size, true)
    }

    #[allow(clippy::too_many_arguments)]
    fn log_inner(
        &mut self,
        node_idx: usize,
        now: SimTime,
        program: &Arc<str>,
        pid: u32,
        tid: u32,
        op: RawOp,
        src: EndpointV4,
        dst: EndpointV4,
        size: u64,
        retrans: bool,
    ) -> u64 {
        if !self.enabled {
            return 0;
        }
        let node = &self.nodes[node_idx];
        let uid = self.next_uid;
        self.next_uid += 1;
        self.total += 1;
        self.records[node_idx].push(RawRecord {
            ts: LocalTime::from_nanos(node.clock.local_nanos(now)),
            hostname: Arc::clone(&node.hostname),
            program: Arc::clone(program),
            pid,
            tid,
            op,
            src,
            dst,
            size,
            tag: uid,
            retrans,
            seq: self.next_seq.take(),
        });
        uid
    }

    /// Drains all records, flattened (the correlator regroups by
    /// hostname itself).
    pub fn into_records(self) -> Vec<RawRecord> {
        self.records.into_iter().flatten().collect()
    }

    /// Per-node record streams (already in local-time order).
    pub fn into_streams(self) -> Vec<(Arc<str>, Vec<RawRecord>)> {
        self.nodes
            .iter()
            .map(|n| Arc::clone(&n.hostname))
            .zip(self.records)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(s: &str) -> EndpointV4 {
        s.parse().unwrap()
    }

    fn sink(enabled: bool) -> ProbeSink {
        ProbeSink::new(
            vec![
                ProbedNode {
                    hostname: "web1".into(),
                    clock: ClockModel::with_offset_ms(100),
                },
                ProbedNode {
                    hostname: "db1".into(),
                    clock: ClockModel::synchronized(),
                },
            ],
            enabled,
        )
    }

    #[test]
    fn logs_with_local_clock() {
        let mut s = sink(true);
        let prog: Arc<str> = "httpd".into();
        let uid = s.log(
            0,
            SimTime(1_000),
            &prog,
            1,
            2,
            RawOp::Send,
            ep("10.0.0.1:80"),
            ep("9.9.9.9:55"),
            42,
        );
        assert_eq!(uid, 1);
        let recs = s.into_records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].ts, LocalTime::from_nanos(100_001_000));
        assert_eq!(recs[0].tag, 1);
        assert_eq!(&*recs[0].hostname, "web1");
    }

    #[test]
    fn disabled_probe_logs_nothing() {
        let mut s = sink(false);
        let prog: Arc<str> = "httpd".into();
        let uid = s.log(
            0,
            SimTime(1_000),
            &prog,
            1,
            2,
            RawOp::Send,
            ep("10.0.0.1:80"),
            ep("9.9.9.9:55"),
            42,
        );
        assert_eq!(uid, 0);
        assert_eq!(s.total(), 0);
        assert!(s.into_records().is_empty());
    }

    #[test]
    fn uids_are_unique_across_nodes() {
        let mut s = sink(true);
        let prog: Arc<str> = "x".into();
        let a = s.log(
            0,
            SimTime(1),
            &prog,
            1,
            1,
            RawOp::Send,
            ep("1.1.1.1:1"),
            ep("2.2.2.2:2"),
            1,
        );
        let b = s.log(
            1,
            SimTime(2),
            &prog,
            1,
            1,
            RawOp::Receive,
            ep("1.1.1.1:1"),
            ep("2.2.2.2:2"),
            1,
        );
        assert_ne!(a, b);
        assert_eq!(s.total(), 2);
    }

    #[test]
    fn per_node_streams_are_time_ordered() {
        let mut s = sink(true);
        let prog: Arc<str> = "x".into();
        for i in 0..10u64 {
            s.log(
                0,
                SimTime(i * 100),
                &prog,
                1,
                1,
                RawOp::Send,
                ep("1.1.1.1:1"),
                ep("2.2.2.2:2"),
                1,
            );
        }
        let streams = s.into_streams();
        let web = &streams[0].1;
        assert!(web.windows(2).all(|w| w[0].ts <= w[1].ts));
    }
}
