//! Specification of the simulated multi-tier service: topology, request
//! types, workload mixes, resource limits and fault injection — the
//! knobs behind every experiment in §5 of the paper.

use std::net::Ipv4Addr;

use rand::Rng;
use simnet::{Dist, SimDur, WireParams};

/// One RUBiS-like request type with its service demands.
#[derive(Debug, Clone)]
pub struct RequestType {
    /// Name, e.g. `ViewItem`.
    pub name: &'static str,
    /// Sampling weight within a mix.
    pub weight: u32,
    /// Whether the request reaches the application tier (static pages
    /// are served by httpd alone).
    pub uses_backend: bool,
    /// Number of database queries issued by the application tier.
    pub queries: u32,
    /// Whether the queries touch the `items` table (affected by the
    /// DataBase_Lock fault).
    pub touches_items: bool,
    /// Whether the request writes (only present in the Default mix).
    pub is_write: bool,
    /// Client→httpd request size (bytes).
    pub req_size: Dist,
    /// httpd→java request size (bytes).
    pub backend_req_size: Dist,
    /// java→mysqld query size (bytes).
    pub query_size: Dist,
    /// mysqld→java result size (bytes).
    pub result_size: Dist,
    /// java→httpd / httpd→client page size (bytes).
    pub page_size: Dist,
    /// CPU demand at httpd (ns).
    pub httpd_cpu: Dist,
    /// Total CPU demand at java (ns), split across processing segments.
    pub java_cpu: Dist,
    /// CPU demand at mysqld per query (ns).
    pub mysql_cpu: Dist,
}

impl RequestType {
    fn browse(name: &'static str, weight: u32, queries: u32, touches_items: bool) -> Self {
        RequestType {
            name,
            weight,
            uses_backend: true,
            queries,
            touches_items,
            is_write: false,
            req_size: Dist::Uniform {
                lo: 300.0,
                hi: 700.0,
            },
            backend_req_size: Dist::Uniform {
                lo: 400.0,
                hi: 900.0,
            },
            query_size: Dist::Uniform {
                lo: 150.0,
                hi: 400.0,
            },
            result_size: Dist::Pareto {
                lo: 800.0,
                hi: 24_000.0,
                alpha: 1.3,
            },
            page_size: Dist::Uniform {
                lo: 5_000.0,
                hi: 14_000.0,
            },
            httpd_cpu: Dist::Exp { mean: 2_200_000.0 }, // ~2.2ms
            java_cpu: Dist::LogNormal {
                median: 7_800_000.0,
                sigma: 0.3,
            }, // ~8.2ms
            mysql_cpu: Dist::Exp { mean: 2_200_000.0 }, // ~2.2ms
        }
    }

    fn write(name: &'static str, weight: u32, queries: u32) -> Self {
        let mut t = Self::browse(name, weight, queries, true);
        t.is_write = true;
        t.result_size = Dist::Uniform {
            lo: 200.0,
            hi: 800.0,
        };
        t.page_size = Dist::Uniform {
            lo: 2_000.0,
            hi: 6_000.0,
        };
        t.mysql_cpu = Dist::Exp { mean: 3_200_000.0 };
        t
    }
}

/// A workload mix: weighted request types.
#[derive(Debug, Clone)]
pub struct Mix {
    /// Mix name (`Browse_Only` or `Default`).
    pub name: &'static str,
    /// The request types with their weights.
    pub types: Vec<RequestType>,
}

impl Mix {
    /// The read-only RUBiS workload of §5.1.
    pub fn browse_only() -> Mix {
        let mut home = RequestType::browse("Home", 10, 0, false);
        home.uses_backend = false;
        home.page_size = Dist::Uniform {
            lo: 2_000.0,
            hi: 5_000.0,
        };
        Mix {
            name: "Browse_Only",
            types: vec![
                home,
                RequestType::browse("BrowseCategories", 12, 1, false),
                RequestType::browse("SearchItemsByCategory", 24, 2, true),
                RequestType::browse("ViewItem", 31, 2, true),
                RequestType::browse("ViewUserInfo", 13, 2, false),
                RequestType::browse("ViewBidHistory", 10, 3, true),
            ],
        }
    }

    /// Browse_Only with payload-heavy request/query bodies (a
    /// content-rich API/POST workload): every logical message spans at
    /// least three wire segments, so a partial-capture sniffer that
    /// misses one segment of a record can still reconstruct it from
    /// the surviving segments' `seq=` arithmetic — single-segment flows
    /// would instead lose records linearly with the drop rate. Used by
    /// the partial-capture scenario family.
    pub fn bulk_browse() -> Mix {
        let mut mix = Mix::browse_only();
        mix.name = "Bulk_Browse";
        for t in &mut mix.types {
            t.req_size = Dist::Uniform {
                lo: 3_000.0,
                hi: 6_000.0,
            };
            t.backend_req_size = Dist::Uniform {
                lo: 3_000.0,
                hi: 6_000.0,
            };
            t.query_size = Dist::Uniform {
                lo: 3_000.0,
                hi: 5_000.0,
            };
            t.result_size = Dist::Pareto {
                lo: 3_200.0,
                hi: 24_000.0,
                alpha: 1.3,
            };
            t.page_size = Dist::Uniform {
                lo: 6_000.0,
                hi: 16_000.0,
            };
        }
        mix
    }

    /// The read-write RUBiS workload of §5.1 (~15% writes).
    pub fn default_mix() -> Mix {
        let mut types = Mix::browse_only().types;
        for t in &mut types {
            t.weight = (t.weight * 85) / 100;
        }
        types.push(RequestType::write("StoreBid", 7, 3));
        types.push(RequestType::write("StoreComment", 4, 2));
        types.push(RequestType::write("RegisterItem", 4, 3));
        Mix {
            name: "Default",
            types,
        }
    }

    /// Samples a request type index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total: u32 = self.types.iter().map(|t| t.weight).sum();
        let mut x = rng.gen_range(0..total);
        for (i, t) in self.types.iter().enumerate() {
            if x < t.weight {
                return i;
            }
            x -= t.weight;
        }
        self.types.len() - 1
    }

    /// The index of a type by name (for targeted analysis, e.g.
    /// ViewItem in Fig. 15).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.types.iter().position(|t| t.name == name)
    }
}

/// Injected performance problems (§5.4.2).
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Abnormal case 1: a random delay injected into the second tier
    /// (pure wait, not CPU).
    EjbDelay {
        /// The injected delay distribution.
        delay: Dist,
    },
    /// Abnormal case 2: the `items` table is locked; queries touching it
    /// serialize and hold the lock for extra time.
    DbLock {
        /// Extra hold time per locked query.
        hold: Dist,
    },
    /// Abnormal case 3: the JBoss node's NIC renegotiates from 100 Mbps
    /// to this bandwidth (10 Mbps in the paper).
    AppNetDegrade {
        /// Degraded bandwidth in bits per second.
        bps: u64,
    },
}

/// Background noise traffic (§5.3.3).
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseSpec {
    /// rlogin/ssh chatter on the web node (filterable by program name).
    pub ssh_msgs_per_sec: f64,
    /// MySQL-client queries from an untraced host against the shared
    /// database (only removable via `is_noise`).
    pub mysql_msgs_per_sec: f64,
}

impl Default for NoiseSpec {
    fn default() -> Self {
        NoiseSpec {
            ssh_msgs_per_sec: 0.0,
            mysql_msgs_per_sec: 0.0,
        }
    }
}

impl NoiseSpec {
    /// No noise at all.
    pub fn none() -> Self {
        NoiseSpec::default()
    }

    /// True when any generator is active.
    pub fn any(&self) -> bool {
        self.ssh_msgs_per_sec > 0.0 || self.mysql_msgs_per_sec > 0.0
    }
}

/// Load-balancing policy for a replicated tier: how the upstream
/// chooses among a tier's replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LbPolicy {
    /// Strict rotation over the replicas.
    RoundRobin,
    /// The replica with the fewest open connections (lowest index on
    /// ties).
    LeastConnections,
}

/// Connection pooling at the web→app hop: requests multiplex over a
/// small set of persistent upstream connections shared by **all**
/// httpd worker processes, so the execution entity servicing a message
/// is decoupled from the connection carrying it (the paper's
/// event-driven caveat, §Discussion). Checkout is serialized — one
/// in-flight request per pooled connection — which keeps the per-channel
/// message sequence FIFO and therefore within the assumptions Rule 1
/// needs; true interleaved multiplexing would break them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolSpec {
    /// Persistent upstream connections per (web node, app node) pair.
    pub connections: usize,
}

/// Sniffer-based capture lane (`TCP_TRACE v2`): instead of the kernel
/// `tcp_recvmsg` probe, records are reconstructed from wire segments by
/// a capture frontend that ships raw TCP stream offsets.
///
/// With this lane enabled, every connection-based record carries the v2
/// `seq=` attribute; receive records are reassembled **per logical
/// message** (the frontend aggregates a message's segment burst into
/// one record, attributed to the thread reading the connection) rather
/// than per kernel read; and duplicate arrivals are logged as one
/// `retrans`+`seq=` record per contiguous duplicated sub-range —
/// reported only once the duplicated bytes have been handed to the
/// application, since an earlier duplicate is indistinguishable from
/// reordering while the frontend is still reassembling the message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaptureSpec {
    /// Per-wire-segment probability that the sniffer misses a segment.
    /// A record survives capture unless **every** segment overlapping
    /// its byte range was missed (the frontend heals interior gaps by
    /// `seq=` arithmetic — TCP guarantees the kernel delivered the
    /// bytes); a fully missed record is simply absent from the log and
    /// from ground truth. `0.0` = lossless capture.
    pub drop: f64,
}

/// Most replicas a tier supports: each replica occupies a parallel /24
/// (third octet += 10), so the paper-default third octets (0–3) leave
/// room for 25 subnets before the octet overflows.
pub const MAX_REPLICAS: usize = 25;

/// Per-tier deployment description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierSpec {
    /// Program name as seen by the probe (`httpd`, `java`, `mysqld`).
    pub program: &'static str,
    /// Hostname (replica 0; further replicas derive theirs via
    /// [`TierSpec::replica_hostname`]).
    pub hostname: &'static str,
    /// Node IP (replica 0; further replicas derive theirs via
    /// [`TierSpec::replica_ip`]).
    pub ip: Ipv4Addr,
    /// Worker limit per replica (threads able to service requests
    /// concurrently).
    pub workers: usize,
    /// CPU cores on each node (the paper's nodes are 2-way SMPs).
    pub cores: usize,
    /// Listening port (shared by all replicas).
    pub port: u16,
    /// Number of identical nodes behind the tier's load balancer
    /// (1 = the paper's single-node tier).
    pub replicas: usize,
    /// How upstream callers pick a replica.
    pub lb: LbPolicy,
}

impl TierSpec {
    /// The IP of replica `r`: replica 0 keeps [`TierSpec::ip`]; each
    /// further replica moves to a parallel subnet (third octet += 10),
    /// keeping replica addresses collision-free across tiers. The
    /// subnet scheme supports [`MAX_REPLICAS`] replicas per tier.
    pub fn replica_ip(&self, r: usize) -> Ipv4Addr {
        let [a, b, c, d] = self.ip.octets();
        let subnet = c as usize + 10 * r;
        assert!(
            subnet <= u8::MAX as usize,
            "replica {r} exceeds the tier's subnet space (max {MAX_REPLICAS} replicas)"
        );
        Ipv4Addr::new(a, b, subnet as u8, d)
    }

    /// The hostname of replica `r`: the base name with its numeric
    /// suffix replaced by `r + 1` (`app1` → `app1`, `app2`, ...).
    pub fn replica_hostname(&self, r: usize) -> String {
        if r == 0 {
            return self.hostname.to_string();
        }
        let base = self
            .hostname
            .trim_end_matches(|ch: char| ch.is_ascii_digit());
        format!("{base}{}", r + 1)
    }
}

/// The full service specification (three tiers plus clients).
#[derive(Debug, Clone)]
pub struct ServiceSpec {
    /// First tier: Apache httpd.
    pub web: TierSpec,
    /// Second tier: JBoss (`java`).
    pub app: TierSpec,
    /// Third tier: MySQL (`mysqld`).
    pub db: TierSpec,
    /// Client emulator node IPs (untraced).
    pub client_ips: Vec<Ipv4Addr>,
    /// JBoss connector thread limit (`MaxThreads`, default 40).
    pub max_threads: usize,
    /// How long an idle connector thread lingers on its keep-alive
    /// connection before becoming reusable (skipped when requests are
    /// queued — JBoss sheds keep-alives under pressure).
    pub keepalive_linger: SimDur,
    /// Connection accept + thread dispatch cost at the app connector
    /// (pure latency part).
    pub conn_setup: Dist,
    /// CPU burned on the app node per accepted connection (dispatch,
    /// parsing); holds a core and saturates the tier at high load.
    pub conn_setup_cpu: Dist,
    /// Concurrent query slots at the database (InnoDB thread
    /// concurrency); queries queue *before* being read beyond this.
    pub db_tokens: usize,
    /// Dispatch latency between query arrival and the worker reading it.
    pub db_dispatch: Dist,
    /// Application write chunk: one SEND probe record per this many
    /// bytes (drives the n-to-n merging of Fig. 4).
    pub app_write_chunk: u64,
    /// Baseline wire parameters for all links.
    pub wire: WireParams,
    /// Probe cost per logged record (CPU) when tracing is enabled.
    pub probe_cost: SimDur,
    /// Whether the TCP_TRACE probe is enabled (Figs. 12/13 compare).
    pub tracing: bool,
    /// Per-tier clock offsets in nanoseconds [web, app, db].
    pub clock_offsets_ns: [i64; 3],
    /// Per-tier clock drift in ppm.
    pub clock_drift_ppm: [f64; 3],
    /// Injected faults.
    pub faults: Vec<Fault>,
    /// Connection pooling at the web→app hop (`None` = the paper's
    /// fresh-connection-per-request behaviour).
    pub pool: Option<PoolSpec>,
    /// Sniffer-based v2 capture lane (`None` = the paper's kernel
    /// probe, v1 records).
    pub capture: Option<CaptureSpec>,
}

impl ServiceSpec {
    /// The paper's deployment (Fig. 7): httpd, JBoss and MySQL on
    /// separate 2-way SMP nodes, 100 Mbps Ethernet, MaxThreads = 40.
    pub fn paper_default() -> Self {
        ServiceSpec {
            web: TierSpec {
                program: "httpd",
                hostname: "web1",
                ip: Ipv4Addr::new(10, 0, 0, 1),
                workers: 1024,
                cores: 2,
                port: 80,
                replicas: 1,
                lb: LbPolicy::RoundRobin,
            },
            app: TierSpec {
                program: "java",
                hostname: "app1",
                ip: Ipv4Addr::new(10, 0, 0, 2),
                workers: 512,
                cores: 2,
                port: 8009,
                replicas: 1,
                lb: LbPolicy::RoundRobin,
            },
            db: TierSpec {
                program: "mysqld",
                hostname: "db1",
                ip: Ipv4Addr::new(10, 0, 0, 3),
                workers: 512,
                cores: 2,
                port: 3306,
                replicas: 1,
                lb: LbPolicy::RoundRobin,
            },
            client_ips: vec![
                Ipv4Addr::new(192, 168, 0, 11),
                Ipv4Addr::new(192, 168, 0, 12),
                Ipv4Addr::new(192, 168, 0, 13),
            ],
            max_threads: 40,
            keepalive_linger: SimDur::from_millis(380),
            conn_setup: Dist::LogNormal {
                median: 15_000_000.0,
                sigma: 0.25,
            }, // ~15ms
            conn_setup_cpu: Dist::LogNormal {
                median: 5_500_000.0,
                sigma: 0.25,
            }, // ~5.7ms
            db_tokens: 4,
            db_dispatch: Dist::Exp { mean: 5_000_000.0 }, // ~5ms
            app_write_chunk: 4096,
            wire: WireParams::default(),
            probe_cost: SimDur::from_micros(18),
            tracing: true,
            // NTP-disciplined cluster: tens-of-microseconds skew and
            // residual drift (the §5.2 sweep overrides these with
            // with_skew_ms to stress the algorithm).
            clock_offsets_ns: [0, 60_000, -40_000],
            clock_drift_ppm: [0.0, 0.05, -0.03],
            faults: Vec::new(),
            pool: None,
            capture: None,
        }
    }

    /// Replicates a tier behind a load balancer (0 = web, 1 = app,
    /// 2 = db).
    pub fn with_replicas(mut self, tier: usize, replicas: usize, lb: LbPolicy) -> Self {
        assert!(replicas >= 1, "a tier needs at least one node");
        assert!(
            replicas <= MAX_REPLICAS,
            "the replica subnet scheme supports at most {MAX_REPLICAS} nodes per tier"
        );
        let t = match tier {
            0 => &mut self.web,
            1 => &mut self.app,
            2 => &mut self.db,
            _ => panic!("tier index out of range"),
        };
        t.replicas = replicas;
        t.lb = lb;
        self
    }

    /// Enables web→app connection pooling with `connections` persistent
    /// upstream connections per (web node, app node) pair.
    pub fn with_pool(mut self, connections: usize) -> Self {
        assert!(connections >= 1, "a pool needs at least one connection");
        self.pool = Some(PoolSpec { connections });
        self
    }

    /// Sets a per-link segment-loss probability (TCP-style retransmit
    /// with duplicate byte ranges and reordered delivery) on every
    /// link.
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!((0.0..1.0).contains(&loss), "loss must be in [0, 1)");
        self.wire.loss = loss;
        self
    }

    /// Switches the probe to the sniffer-based `TCP_TRACE v2` capture
    /// lane (see [`CaptureSpec`]): v2 `seq=` offsets on every
    /// connection record, per-message receive reassembly, and — with
    /// `drop > 0` — partial capture where each wire segment is missed
    /// with that probability.
    pub fn with_sniffer_capture(mut self, drop: f64) -> Self {
        assert!((0.0..1.0).contains(&drop), "drop must be in [0, 1)");
        self.capture = Some(CaptureSpec { drop });
        self
    }

    /// Every service node IP across all tiers and replicas — the
    /// internal-IP set of the deployment's access spec.
    pub fn internal_ips(&self) -> Vec<Ipv4Addr> {
        (0..3)
            .flat_map(|t| {
                let tier = self.tier(t);
                (0..tier.replicas).map(move |r| tier.replica_ip(r))
            })
            .collect()
    }

    /// Returns the spec with a different `MaxThreads` (Fig. 16).
    pub fn with_max_threads(mut self, n: usize) -> Self {
        self.max_threads = n;
        self
    }

    /// Adds a fault.
    pub fn with_fault(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Enables/disables the probe (Figs. 12/13).
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Sets uniform clock skew: the app node ahead by `ms`, the db node
    /// behind by `ms/2` (the §5.2 skew sweep).
    pub fn with_skew_ms(mut self, ms: i64) -> Self {
        self.clock_offsets_ns = [0, ms * 1_000_000, -ms * 500_000];
        self
    }

    /// The tier spec by index (0 = web, 1 = app, 2 = db).
    pub fn tier(&self, i: usize) -> &TierSpec {
        match i {
            0 => &self.web,
            1 => &self.app,
            2 => &self.db,
            _ => panic!("tier index out of range"),
        }
    }

    /// The EjbDelay fault, if configured.
    pub fn ejb_delay(&self) -> Option<&Dist> {
        self.faults.iter().find_map(|f| match f {
            Fault::EjbDelay { delay } => Some(delay),
            _ => None,
        })
    }

    /// The DbLock fault, if configured.
    pub fn db_lock(&self) -> Option<&Dist> {
        self.faults.iter().find_map(|f| match f {
            Fault::DbLock { hold } => Some(hold),
            _ => None,
        })
    }

    /// The degraded app-NIC bandwidth, if configured.
    pub fn app_net_bps(&self) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            Fault::AppNetDegrade { bps } => Some(*bps),
            _ => None,
        })
    }
}

/// Workload session phases (§5.1): up ramp, runtime session, down ramp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phases {
    /// Up-ramp duration (clients start staggered).
    pub up: SimDur,
    /// Steady-state duration (the measurement window).
    pub steady: SimDur,
    /// Down-ramp duration (clients retire staggered).
    pub down: SimDur,
}

impl Phases {
    /// The paper's session: 2 min up, 7.5 min runtime, 1 min down
    /// (the odd extra 9 ms of the user guide is dropped).
    pub fn paper() -> Self {
        Phases {
            up: SimDur::from_secs(120),
            steady: SimDur::from_secs(450),
            down: SimDur::from_secs(60),
        }
    }

    /// A shortened session for tests and quick benches, preserving the
    /// up/steady/down proportions.
    pub fn quick(steady_secs: u64) -> Self {
        Phases {
            up: SimDur::from_secs((steady_secs / 4).max(2)),
            steady: SimDur::from_secs(steady_secs),
            down: SimDur::from_secs((steady_secs / 8).max(1)),
        }
    }

    /// Total session length.
    pub fn total(&self) -> SimDur {
        self.up + self.steady + self.down
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn browse_only_has_no_writes() {
        let mix = Mix::browse_only();
        assert!(mix.types.iter().all(|t| !t.is_write));
        assert!(mix.index_of("ViewItem").is_some());
    }

    #[test]
    fn default_mix_has_writes() {
        let mix = Mix::default_mix();
        assert!(mix.types.iter().any(|t| t.is_write));
    }

    #[test]
    fn mix_sampling_respects_weights() {
        let mix = Mix::browse_only();
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u32; mix.types.len()];
        for _ in 0..20_000 {
            counts[mix.sample(&mut rng)] += 1;
        }
        let view_item = mix.index_of("ViewItem").unwrap();
        let home = mix.index_of("Home").unwrap();
        // ViewItem (weight 31) must be sampled ~3x more than Home (10).
        let ratio = counts[view_item] as f64 / counts[home] as f64;
        assert!((2.3..4.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn paper_spec_matches_fig7() {
        let s = ServiceSpec::paper_default();
        assert_eq!(s.web.program, "httpd");
        assert_eq!(s.app.program, "java");
        assert_eq!(s.db.program, "mysqld");
        assert_eq!(s.max_threads, 40);
        assert_eq!(s.web.port, 80);
        assert_eq!(s.tier(2).port, 3306);
    }

    #[test]
    #[should_panic(expected = "tier index out of range")]
    fn tier_index_bounds() {
        let _ = ServiceSpec::paper_default().tier(3);
    }

    #[test]
    fn fault_accessors() {
        let s = ServiceSpec::paper_default()
            .with_fault(Fault::EjbDelay {
                delay: Dist::Constant(1.0),
            })
            .with_fault(Fault::DbLock {
                hold: Dist::Constant(2.0),
            })
            .with_fault(Fault::AppNetDegrade { bps: 10_000_000 });
        assert!(s.ejb_delay().is_some());
        assert!(s.db_lock().is_some());
        assert_eq!(s.app_net_bps(), Some(10_000_000));
        let clean = ServiceSpec::paper_default();
        assert!(clean.ejb_delay().is_none());
        assert!(clean.app_net_bps().is_none());
    }

    #[test]
    fn skew_builder_sets_offsets() {
        let s = ServiceSpec::paper_default().with_skew_ms(500);
        assert_eq!(s.clock_offsets_ns[1], 500_000_000);
        assert_eq!(s.clock_offsets_ns[2], -250_000_000);
    }

    #[test]
    fn phases_total() {
        let p = Phases::paper();
        assert_eq!(p.total(), SimDur::from_secs(630));
        let q = Phases::quick(20);
        assert_eq!(q.up, SimDur::from_secs(5));
        assert_eq!(q.down, SimDur::from_secs(2));
    }

    #[test]
    fn replica_addresses_are_distinct_and_collision_free() {
        let s = ServiceSpec::paper_default()
            .with_replicas(0, 2, LbPolicy::RoundRobin)
            .with_replicas(1, 3, LbPolicy::LeastConnections)
            .with_replicas(2, 2, LbPolicy::RoundRobin);
        let ips = s.internal_ips();
        assert_eq!(ips.len(), 7);
        let unique: std::collections::BTreeSet<_> = ips.iter().collect();
        assert_eq!(unique.len(), 7, "replica IPs must not collide: {ips:?}");
        assert_eq!(s.web.replica_ip(0), s.web.ip);
        assert_eq!(s.app.replica_hostname(0), "app1");
        assert_eq!(s.app.replica_hostname(1), "app2");
        assert_eq!(s.app.replica_hostname(2), "app3");
        assert_eq!(s.app.lb, LbPolicy::LeastConnections);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn replica_subnet_cap_is_enforced() {
        let _ =
            ServiceSpec::paper_default().with_replicas(1, MAX_REPLICAS + 1, LbPolicy::RoundRobin);
    }

    #[test]
    fn replica_cap_boundary_is_collision_free() {
        let s = ServiceSpec::paper_default()
            .with_replicas(0, MAX_REPLICAS, LbPolicy::RoundRobin)
            .with_replicas(1, MAX_REPLICAS, LbPolicy::RoundRobin)
            .with_replicas(2, MAX_REPLICAS, LbPolicy::RoundRobin);
        let ips = s.internal_ips();
        let unique: std::collections::BTreeSet<_> = ips.iter().collect();
        assert_eq!(unique.len(), 3 * MAX_REPLICAS);
    }

    #[test]
    fn pool_and_loss_builders() {
        let s = ServiceSpec::paper_default().with_pool(4).with_loss(0.01);
        assert_eq!(s.pool, Some(PoolSpec { connections: 4 }));
        assert!((s.wire.loss - 0.01).abs() < 1e-12);
        assert!(ServiceSpec::paper_default().pool.is_none());
        assert_eq!(ServiceSpec::paper_default().wire.loss, 0.0);
    }

    #[test]
    fn single_replica_internal_ips_match_paper() {
        let s = ServiceSpec::paper_default();
        assert_eq!(s.internal_ips(), vec![s.web.ip, s.app.ip, s.db.ip]);
    }

    #[test]
    fn noise_spec_any() {
        assert!(!NoiseSpec::none().any());
        assert!(NoiseSpec {
            ssh_msgs_per_sec: 1.0,
            ..NoiseSpec::none()
        }
        .any());
    }
}
