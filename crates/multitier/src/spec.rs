//! Specification of the simulated multi-tier service: topology, request
//! types, workload mixes, resource limits and fault injection — the
//! knobs behind every experiment in §5 of the paper.

use std::net::Ipv4Addr;

use rand::Rng;
use simnet::{Dist, SimDur, WireParams};

/// One RUBiS-like request type with its service demands.
#[derive(Debug, Clone)]
pub struct RequestType {
    /// Name, e.g. `ViewItem`.
    pub name: &'static str,
    /// Sampling weight within a mix.
    pub weight: u32,
    /// Whether the request reaches the application tier (static pages
    /// are served by httpd alone).
    pub uses_backend: bool,
    /// Number of database queries issued by the application tier.
    pub queries: u32,
    /// Whether the queries touch the `items` table (affected by the
    /// DataBase_Lock fault).
    pub touches_items: bool,
    /// Whether the request writes (only present in the Default mix).
    pub is_write: bool,
    /// Client→httpd request size (bytes).
    pub req_size: Dist,
    /// httpd→java request size (bytes).
    pub backend_req_size: Dist,
    /// java→mysqld query size (bytes).
    pub query_size: Dist,
    /// mysqld→java result size (bytes).
    pub result_size: Dist,
    /// java→httpd / httpd→client page size (bytes).
    pub page_size: Dist,
    /// CPU demand at httpd (ns).
    pub httpd_cpu: Dist,
    /// Total CPU demand at java (ns), split across processing segments.
    pub java_cpu: Dist,
    /// CPU demand at mysqld per query (ns).
    pub mysql_cpu: Dist,
}

impl RequestType {
    fn browse(name: &'static str, weight: u32, queries: u32, touches_items: bool) -> Self {
        RequestType {
            name,
            weight,
            uses_backend: true,
            queries,
            touches_items,
            is_write: false,
            req_size: Dist::Uniform {
                lo: 300.0,
                hi: 700.0,
            },
            backend_req_size: Dist::Uniform {
                lo: 400.0,
                hi: 900.0,
            },
            query_size: Dist::Uniform {
                lo: 150.0,
                hi: 400.0,
            },
            result_size: Dist::Pareto {
                lo: 800.0,
                hi: 24_000.0,
                alpha: 1.3,
            },
            page_size: Dist::Uniform {
                lo: 5_000.0,
                hi: 14_000.0,
            },
            httpd_cpu: Dist::Exp { mean: 2_200_000.0 }, // ~2.2ms
            java_cpu: Dist::LogNormal {
                median: 7_800_000.0,
                sigma: 0.3,
            }, // ~8.2ms
            mysql_cpu: Dist::Exp { mean: 2_200_000.0 }, // ~2.2ms
        }
    }

    fn write(name: &'static str, weight: u32, queries: u32) -> Self {
        let mut t = Self::browse(name, weight, queries, true);
        t.is_write = true;
        t.result_size = Dist::Uniform {
            lo: 200.0,
            hi: 800.0,
        };
        t.page_size = Dist::Uniform {
            lo: 2_000.0,
            hi: 6_000.0,
        };
        t.mysql_cpu = Dist::Exp { mean: 3_200_000.0 };
        t
    }
}

/// A workload mix: weighted request types.
#[derive(Debug, Clone)]
pub struct Mix {
    /// Mix name (`Browse_Only` or `Default`).
    pub name: &'static str,
    /// The request types with their weights.
    pub types: Vec<RequestType>,
}

impl Mix {
    /// The read-only RUBiS workload of §5.1.
    pub fn browse_only() -> Mix {
        let mut home = RequestType::browse("Home", 10, 0, false);
        home.uses_backend = false;
        home.page_size = Dist::Uniform {
            lo: 2_000.0,
            hi: 5_000.0,
        };
        Mix {
            name: "Browse_Only",
            types: vec![
                home,
                RequestType::browse("BrowseCategories", 12, 1, false),
                RequestType::browse("SearchItemsByCategory", 24, 2, true),
                RequestType::browse("ViewItem", 31, 2, true),
                RequestType::browse("ViewUserInfo", 13, 2, false),
                RequestType::browse("ViewBidHistory", 10, 3, true),
            ],
        }
    }

    /// The read-write RUBiS workload of §5.1 (~15% writes).
    pub fn default_mix() -> Mix {
        let mut types = Mix::browse_only().types;
        for t in &mut types {
            t.weight = (t.weight * 85) / 100;
        }
        types.push(RequestType::write("StoreBid", 7, 3));
        types.push(RequestType::write("StoreComment", 4, 2));
        types.push(RequestType::write("RegisterItem", 4, 3));
        Mix {
            name: "Default",
            types,
        }
    }

    /// Samples a request type index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total: u32 = self.types.iter().map(|t| t.weight).sum();
        let mut x = rng.gen_range(0..total);
        for (i, t) in self.types.iter().enumerate() {
            if x < t.weight {
                return i;
            }
            x -= t.weight;
        }
        self.types.len() - 1
    }

    /// The index of a type by name (for targeted analysis, e.g.
    /// ViewItem in Fig. 15).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.types.iter().position(|t| t.name == name)
    }
}

/// Injected performance problems (§5.4.2).
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Abnormal case 1: a random delay injected into the second tier
    /// (pure wait, not CPU).
    EjbDelay {
        /// The injected delay distribution.
        delay: Dist,
    },
    /// Abnormal case 2: the `items` table is locked; queries touching it
    /// serialize and hold the lock for extra time.
    DbLock {
        /// Extra hold time per locked query.
        hold: Dist,
    },
    /// Abnormal case 3: the JBoss node's NIC renegotiates from 100 Mbps
    /// to this bandwidth (10 Mbps in the paper).
    AppNetDegrade {
        /// Degraded bandwidth in bits per second.
        bps: u64,
    },
}

/// Background noise traffic (§5.3.3).
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseSpec {
    /// rlogin/ssh chatter on the web node (filterable by program name).
    pub ssh_msgs_per_sec: f64,
    /// MySQL-client queries from an untraced host against the shared
    /// database (only removable via `is_noise`).
    pub mysql_msgs_per_sec: f64,
}

impl Default for NoiseSpec {
    fn default() -> Self {
        NoiseSpec {
            ssh_msgs_per_sec: 0.0,
            mysql_msgs_per_sec: 0.0,
        }
    }
}

impl NoiseSpec {
    /// No noise at all.
    pub fn none() -> Self {
        NoiseSpec::default()
    }

    /// True when any generator is active.
    pub fn any(&self) -> bool {
        self.ssh_msgs_per_sec > 0.0 || self.mysql_msgs_per_sec > 0.0
    }
}

/// Per-tier deployment description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierSpec {
    /// Program name as seen by the probe (`httpd`, `java`, `mysqld`).
    pub program: &'static str,
    /// Hostname.
    pub hostname: &'static str,
    /// Node IP.
    pub ip: Ipv4Addr,
    /// Worker limit (threads able to service requests concurrently).
    pub workers: usize,
    /// CPU cores on the node (the paper's nodes are 2-way SMPs).
    pub cores: usize,
    /// Listening port.
    pub port: u16,
}

/// The full service specification (three tiers plus clients).
#[derive(Debug, Clone)]
pub struct ServiceSpec {
    /// First tier: Apache httpd.
    pub web: TierSpec,
    /// Second tier: JBoss (`java`).
    pub app: TierSpec,
    /// Third tier: MySQL (`mysqld`).
    pub db: TierSpec,
    /// Client emulator node IPs (untraced).
    pub client_ips: Vec<Ipv4Addr>,
    /// JBoss connector thread limit (`MaxThreads`, default 40).
    pub max_threads: usize,
    /// How long an idle connector thread lingers on its keep-alive
    /// connection before becoming reusable (skipped when requests are
    /// queued — JBoss sheds keep-alives under pressure).
    pub keepalive_linger: SimDur,
    /// Connection accept + thread dispatch cost at the app connector
    /// (pure latency part).
    pub conn_setup: Dist,
    /// CPU burned on the app node per accepted connection (dispatch,
    /// parsing); holds a core and saturates the tier at high load.
    pub conn_setup_cpu: Dist,
    /// Concurrent query slots at the database (InnoDB thread
    /// concurrency); queries queue *before* being read beyond this.
    pub db_tokens: usize,
    /// Dispatch latency between query arrival and the worker reading it.
    pub db_dispatch: Dist,
    /// Application write chunk: one SEND probe record per this many
    /// bytes (drives the n-to-n merging of Fig. 4).
    pub app_write_chunk: u64,
    /// Baseline wire parameters for all links.
    pub wire: WireParams,
    /// Probe cost per logged record (CPU) when tracing is enabled.
    pub probe_cost: SimDur,
    /// Whether the TCP_TRACE probe is enabled (Figs. 12/13 compare).
    pub tracing: bool,
    /// Per-tier clock offsets in nanoseconds [web, app, db].
    pub clock_offsets_ns: [i64; 3],
    /// Per-tier clock drift in ppm.
    pub clock_drift_ppm: [f64; 3],
    /// Injected faults.
    pub faults: Vec<Fault>,
}

impl ServiceSpec {
    /// The paper's deployment (Fig. 7): httpd, JBoss and MySQL on
    /// separate 2-way SMP nodes, 100 Mbps Ethernet, MaxThreads = 40.
    pub fn paper_default() -> Self {
        ServiceSpec {
            web: TierSpec {
                program: "httpd",
                hostname: "web1",
                ip: Ipv4Addr::new(10, 0, 0, 1),
                workers: 1024,
                cores: 2,
                port: 80,
            },
            app: TierSpec {
                program: "java",
                hostname: "app1",
                ip: Ipv4Addr::new(10, 0, 0, 2),
                workers: 512,
                cores: 2,
                port: 8009,
            },
            db: TierSpec {
                program: "mysqld",
                hostname: "db1",
                ip: Ipv4Addr::new(10, 0, 0, 3),
                workers: 512,
                cores: 2,
                port: 3306,
            },
            client_ips: vec![
                Ipv4Addr::new(192, 168, 0, 11),
                Ipv4Addr::new(192, 168, 0, 12),
                Ipv4Addr::new(192, 168, 0, 13),
            ],
            max_threads: 40,
            keepalive_linger: SimDur::from_millis(380),
            conn_setup: Dist::LogNormal {
                median: 15_000_000.0,
                sigma: 0.25,
            }, // ~15ms
            conn_setup_cpu: Dist::LogNormal {
                median: 5_500_000.0,
                sigma: 0.25,
            }, // ~5.7ms
            db_tokens: 4,
            db_dispatch: Dist::Exp { mean: 5_000_000.0 }, // ~5ms
            app_write_chunk: 4096,
            wire: WireParams::default(),
            probe_cost: SimDur::from_micros(18),
            tracing: true,
            // NTP-disciplined cluster: tens-of-microseconds skew and
            // residual drift (the §5.2 sweep overrides these with
            // with_skew_ms to stress the algorithm).
            clock_offsets_ns: [0, 60_000, -40_000],
            clock_drift_ppm: [0.0, 0.05, -0.03],
            faults: Vec::new(),
        }
    }

    /// Returns the spec with a different `MaxThreads` (Fig. 16).
    pub fn with_max_threads(mut self, n: usize) -> Self {
        self.max_threads = n;
        self
    }

    /// Adds a fault.
    pub fn with_fault(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Enables/disables the probe (Figs. 12/13).
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Sets uniform clock skew: the app node ahead by `ms`, the db node
    /// behind by `ms/2` (the §5.2 skew sweep).
    pub fn with_skew_ms(mut self, ms: i64) -> Self {
        self.clock_offsets_ns = [0, ms * 1_000_000, -ms * 500_000];
        self
    }

    /// The tier spec by index (0 = web, 1 = app, 2 = db).
    pub fn tier(&self, i: usize) -> &TierSpec {
        match i {
            0 => &self.web,
            1 => &self.app,
            2 => &self.db,
            _ => panic!("tier index out of range"),
        }
    }

    /// The EjbDelay fault, if configured.
    pub fn ejb_delay(&self) -> Option<&Dist> {
        self.faults.iter().find_map(|f| match f {
            Fault::EjbDelay { delay } => Some(delay),
            _ => None,
        })
    }

    /// The DbLock fault, if configured.
    pub fn db_lock(&self) -> Option<&Dist> {
        self.faults.iter().find_map(|f| match f {
            Fault::DbLock { hold } => Some(hold),
            _ => None,
        })
    }

    /// The degraded app-NIC bandwidth, if configured.
    pub fn app_net_bps(&self) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            Fault::AppNetDegrade { bps } => Some(*bps),
            _ => None,
        })
    }
}

/// Workload session phases (§5.1): up ramp, runtime session, down ramp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phases {
    /// Up-ramp duration (clients start staggered).
    pub up: SimDur,
    /// Steady-state duration (the measurement window).
    pub steady: SimDur,
    /// Down-ramp duration (clients retire staggered).
    pub down: SimDur,
}

impl Phases {
    /// The paper's session: 2 min up, 7.5 min runtime, 1 min down
    /// (the odd extra 9 ms of the user guide is dropped).
    pub fn paper() -> Self {
        Phases {
            up: SimDur::from_secs(120),
            steady: SimDur::from_secs(450),
            down: SimDur::from_secs(60),
        }
    }

    /// A shortened session for tests and quick benches, preserving the
    /// up/steady/down proportions.
    pub fn quick(steady_secs: u64) -> Self {
        Phases {
            up: SimDur::from_secs((steady_secs / 4).max(2)),
            steady: SimDur::from_secs(steady_secs),
            down: SimDur::from_secs((steady_secs / 8).max(1)),
        }
    }

    /// Total session length.
    pub fn total(&self) -> SimDur {
        self.up + self.steady + self.down
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn browse_only_has_no_writes() {
        let mix = Mix::browse_only();
        assert!(mix.types.iter().all(|t| !t.is_write));
        assert!(mix.index_of("ViewItem").is_some());
    }

    #[test]
    fn default_mix_has_writes() {
        let mix = Mix::default_mix();
        assert!(mix.types.iter().any(|t| t.is_write));
    }

    #[test]
    fn mix_sampling_respects_weights() {
        let mix = Mix::browse_only();
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u32; mix.types.len()];
        for _ in 0..20_000 {
            counts[mix.sample(&mut rng)] += 1;
        }
        let view_item = mix.index_of("ViewItem").unwrap();
        let home = mix.index_of("Home").unwrap();
        // ViewItem (weight 31) must be sampled ~3x more than Home (10).
        let ratio = counts[view_item] as f64 / counts[home] as f64;
        assert!((2.3..4.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn paper_spec_matches_fig7() {
        let s = ServiceSpec::paper_default();
        assert_eq!(s.web.program, "httpd");
        assert_eq!(s.app.program, "java");
        assert_eq!(s.db.program, "mysqld");
        assert_eq!(s.max_threads, 40);
        assert_eq!(s.web.port, 80);
        assert_eq!(s.tier(2).port, 3306);
    }

    #[test]
    #[should_panic(expected = "tier index out of range")]
    fn tier_index_bounds() {
        let _ = ServiceSpec::paper_default().tier(3);
    }

    #[test]
    fn fault_accessors() {
        let s = ServiceSpec::paper_default()
            .with_fault(Fault::EjbDelay {
                delay: Dist::Constant(1.0),
            })
            .with_fault(Fault::DbLock {
                hold: Dist::Constant(2.0),
            })
            .with_fault(Fault::AppNetDegrade { bps: 10_000_000 });
        assert!(s.ejb_delay().is_some());
        assert!(s.db_lock().is_some());
        assert_eq!(s.app_net_bps(), Some(10_000_000));
        let clean = ServiceSpec::paper_default();
        assert!(clean.ejb_delay().is_none());
        assert!(clean.app_net_bps().is_none());
    }

    #[test]
    fn skew_builder_sets_offsets() {
        let s = ServiceSpec::paper_default().with_skew_ms(500);
        assert_eq!(s.clock_offsets_ns[1], 500_000_000);
        assert_eq!(s.clock_offsets_ns[2], -250_000_000);
    }

    #[test]
    fn phases_total() {
        let p = Phases::paper();
        assert_eq!(p.total(), SimDur::from_secs(630));
        let q = Phases::quick(20);
        assert_eq!(q.up, SimDur::from_secs(5));
        assert_eq!(q.down, SimDur::from_secs(2));
    }

    #[test]
    fn noise_spec_any() {
        assert!(!NoiseSpec::none().any());
        assert!(NoiseSpec {
            ssh_msgs_per_sec: 1.0,
            ..NoiseSpec::none()
        }
        .any());
    }
}
