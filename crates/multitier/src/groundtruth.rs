//! Ground truth and path accuracy (§5.2).
//!
//! The paper validates PreciseTracer by modifying RUBiS to tag and
//! propagate a globally unique request ID, then checking every inferred
//! causal path against the tagged logs:
//!
//! > "If all attributes of a causal path are consistent with the ones
//! > obtained from the logs of RUBiS, we confirm that the causal path is
//! > correct. Path accuracy = correct paths / all logged requests."
//!
//! The simulator plays the modified-RUBiS role: it knows which probe
//! records belong to which request and records them here. A CAG is
//! *correct* when its multiset of record uids equals a request's truth
//! set exactly — any missing, foreign or noise record makes it wrong.

use std::collections::HashMap;

use simnet::SimTime;
use tracer_core::Cag;

/// Truth for one request.
#[derive(Debug, Clone)]
pub struct RequestTruth {
    /// Request id.
    pub id: u64,
    /// Request type index in the mix.
    pub type_idx: usize,
    /// Issue time (client side, true time).
    pub issued: SimTime,
    /// Completion time (client side, true time); `None` while in
    /// flight.
    pub completed: Option<SimTime>,
    /// Uids of every probe record caused by this request, sorted.
    pub records: Vec<u64>,
}

/// Collects per-request truth during simulation.
#[derive(Debug, Default)]
pub struct TruthCollector {
    requests: HashMap<u64, RequestTruth>,
    next_id: u64,
    noise_records: u64,
}

impl TruthCollector {
    /// An empty collector.
    pub fn new() -> Self {
        TruthCollector {
            requests: HashMap::new(),
            next_id: 1,
            noise_records: 0,
        }
    }

    /// Registers a new request; returns its id.
    pub fn new_request(&mut self, type_idx: usize, issued: SimTime) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.requests.insert(
            id,
            RequestTruth {
                id,
                type_idx,
                issued,
                completed: None,
                records: Vec::new(),
            },
        );
        id
    }

    /// Attributes a probe record (by uid) to a request. Uid 0 (probe
    /// disabled) is ignored.
    pub fn attribute(&mut self, req: u64, record_uid: u64) {
        if record_uid == 0 {
            return;
        }
        if let Some(r) = self.requests.get_mut(&req) {
            r.records.push(record_uid);
        }
    }

    /// Counts a noise record (belongs to no request).
    pub fn note_noise(&mut self, record_uid: u64) {
        if record_uid != 0 {
            self.noise_records += 1;
        }
    }

    /// Marks a request complete.
    pub fn complete(&mut self, req: u64, at: SimTime) {
        if let Some(r) = self.requests.get_mut(&req) {
            r.completed = Some(at);
        }
    }

    /// All requests (any state).
    pub fn requests(&self) -> impl Iterator<Item = &RequestTruth> {
        self.requests.values()
    }

    /// A specific request.
    pub fn get(&self, id: u64) -> Option<&RequestTruth> {
        self.requests.get(&id)
    }

    /// Number of completed requests.
    pub fn completed_count(&self) -> u64 {
        self.requests
            .values()
            .filter(|r| r.completed.is_some())
            .count() as u64
    }

    /// Total noise records observed.
    pub fn noise_records(&self) -> u64 {
        self.noise_records
    }

    /// Evaluates path accuracy of a correlation result against the
    /// truth.
    pub fn evaluate(&self, cags: &[Cag]) -> AccuracyReport {
        // Index: sorted record multiset → request id.
        let mut by_records: HashMap<Vec<u64>, u64> = HashMap::new();
        let mut completed = 0u64;
        for r in self.requests.values() {
            if r.completed.is_some() && !r.records.is_empty() {
                completed += 1;
                let mut recs = r.records.clone();
                recs.sort_unstable();
                by_records.insert(recs, r.id);
            }
        }
        let mut correct = 0u64;
        let mut matched: HashMap<u64, u64> = HashMap::new(); // req -> #cags matching
        let mut false_paths = 0u64;
        for cag in cags {
            let tags = cag.sorted_tags();
            match by_records.get(&tags) {
                Some(&req) => {
                    let n = matched.entry(req).or_insert(0);
                    *n += 1;
                    if *n == 1 {
                        correct += 1;
                    } else {
                        false_paths += 1; // duplicate claim of the same request
                    }
                }
                None => false_paths += 1,
            }
        }
        AccuracyReport {
            logged_requests: completed,
            correct_paths: correct,
            false_paths,
            missing_paths: completed - correct,
        }
    }
}

/// The §5.2 accuracy quantities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccuracyReport {
    /// Requests completed and logged by the (simulated) instrumented
    /// application.
    pub logged_requests: u64,
    /// Inferred paths whose records match a request exactly.
    pub correct_paths: u64,
    /// Inferred paths matching no request (false positives).
    pub false_paths: u64,
    /// Requests with no correct path (false negatives).
    pub missing_paths: u64,
}

impl AccuracyReport {
    /// `correct paths / all logged requests`.
    pub fn accuracy(&self) -> f64 {
        if self.logged_requests == 0 {
            return 1.0;
        }
        self.correct_paths as f64 / self.logged_requests as f64
    }

    /// Fraction of inferred paths that are correct:
    /// `correct / (correct + false)`. 1.0 when nothing was inferred.
    pub fn precision(&self) -> f64 {
        let inferred = self.correct_paths + self.false_paths;
        if inferred == 0 {
            return 1.0;
        }
        self.correct_paths as f64 / inferred as f64
    }

    /// Fraction of logged requests recovered as a correct path — the
    /// paper's path accuracy, under its information-retrieval name.
    pub fn recall(&self) -> f64 {
        self.accuracy()
    }

    /// True when accuracy is exactly 100% with no false positives.
    pub fn is_perfect(&self) -> bool {
        self.false_paths == 0 && self.missing_paths == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracer_core::cag::Vertex;
    use tracer_core::{ActivityType, Channel, ContextId, LocalTime};

    /// A minimal BEGIN→END CAG carrying the given ground-truth tags.
    fn cag_with_tags(tags: &[u64]) -> Cag {
        let ch = Channel::new(
            "192.168.0.9:5000".parse().unwrap(),
            "10.0.0.1:80".parse().unwrap(),
        );
        let mk = |ty, ts, ctx_parent| Vertex {
            ty,
            ts: LocalTime::from_nanos(ts),
            ts_last: LocalTime::from_nanos(ts),
            ctx: ContextId::new("web", "httpd", 1, 1),
            channel: ch,
            size: 10,
            tags: vec![],
            ctx_parent,
            msg_parent: None,
        };
        let mut c = Cag {
            id: 1,
            vertices: vec![
                mk(ActivityType::Begin, 100, None),
                mk(ActivityType::End, 200, Some(0)),
            ],
            finished: true,
        };
        let n = c.vertices.len();
        for (i, t) in tags.iter().enumerate() {
            c.vertices[i % n].tags.push(*t);
        }
        c
    }

    #[test]
    fn exact_match_counts_correct() {
        let mut t = TruthCollector::new();
        let r = t.new_request(0, SimTime(0));
        for uid in [1, 2, 3] {
            t.attribute(r, uid);
        }
        t.complete(r, SimTime(100));
        let rep = t.evaluate(&[cag_with_tags(&[1, 2, 3])]);
        assert_eq!(rep.correct_paths, 1);
        assert!(rep.is_perfect());
        assert_eq!(rep.accuracy(), 1.0);
    }

    #[test]
    fn missing_record_is_incorrect() {
        let mut t = TruthCollector::new();
        let r = t.new_request(0, SimTime(0));
        for uid in [1, 2, 3] {
            t.attribute(r, uid);
        }
        t.complete(r, SimTime(100));
        let rep = t.evaluate(&[cag_with_tags(&[1, 2])]);
        assert_eq!(rep.correct_paths, 0);
        assert_eq!(rep.false_paths, 1);
        assert_eq!(rep.missing_paths, 1);
        assert_eq!(rep.accuracy(), 0.0);
    }

    #[test]
    fn foreign_record_is_incorrect() {
        let mut t = TruthCollector::new();
        let r = t.new_request(0, SimTime(0));
        for uid in [1, 2] {
            t.attribute(r, uid);
        }
        t.complete(r, SimTime(100));
        let rep = t.evaluate(&[cag_with_tags(&[1, 2, 99])]);
        assert_eq!(rep.correct_paths, 0);
        assert!(!rep.is_perfect());
    }

    #[test]
    fn duplicate_claims_are_false_paths() {
        let mut t = TruthCollector::new();
        let r = t.new_request(0, SimTime(0));
        t.attribute(r, 1);
        t.complete(r, SimTime(100));
        let rep = t.evaluate(&[cag_with_tags(&[1]), cag_with_tags(&[1])]);
        assert_eq!(rep.correct_paths, 1);
        assert_eq!(rep.false_paths, 1);
    }

    #[test]
    fn incomplete_requests_not_counted() {
        let mut t = TruthCollector::new();
        let r = t.new_request(0, SimTime(0));
        t.attribute(r, 1);
        // never completed
        let rep = t.evaluate(&[]);
        assert_eq!(rep.logged_requests, 0);
        assert_eq!(rep.accuracy(), 1.0);
    }

    #[test]
    fn zero_uid_ignored() {
        let mut t = TruthCollector::new();
        let r = t.new_request(0, SimTime(0));
        t.attribute(r, 0);
        t.complete(r, SimTime(1));
        // Request has no records → excluded from "logged".
        let rep = t.evaluate(&[]);
        assert_eq!(rep.logged_requests, 0);
    }

    #[test]
    fn noise_counter() {
        let mut t = TruthCollector::new();
        t.note_noise(7);
        t.note_noise(0);
        assert_eq!(t.noise_records(), 1);
    }
}
