//! # multitier — a simulated RUBiS deployment with a TCP_TRACE probe
//!
//! The PreciseTracer paper evaluates on RUBiS (a three-tier eBay-like
//! auction site: Apache httpd → JBoss → MySQL) deployed on an 8-node
//! cluster, traced by SystemTap probes on `tcp_sendmsg`/`tcp_recvmsg`.
//! This crate is the substitute substrate: a deterministic
//! discrete-event model of that deployment that emits **byte-accurate
//! TCP_TRACE records** ([`tracer_core::raw::RawRecord`]) with per-node
//! skewed clocks, plus the ground-truth request tagging the paper used
//! to validate accuracy (§5.2).
//!
//! What is modeled (see DESIGN.md for the full substitution table):
//!
//! * closed-loop client emulators with think times and the RUBiS
//!   Browse_Only / Default mixes, session phases (ramp-up / runtime /
//!   ramp-down);
//! * Apache prefork semantics: one process per keep-alive client
//!   connection;
//! * the JBoss connector thread pool (`MaxThreads`, default 40) with
//!   per-request upstream connections, accept/dispatch cost and
//!   keep-alive thread lingering — the Fig. 15/16 bottleneck;
//! * MySQL thread-per-connection workers behind a bounded concurrency
//!   gate;
//! * per-node CPU cores (2-way SMPs), 100 Mbps links with MSS
//!   segmentation and receiver coalescing (the Fig. 4 n-to-n activity
//!   asymmetry);
//! * fault injection: EJB delay, locked `items` table, 10 Mbps NIC
//!   (§5.4.2), and the `MaxThreads` misconfiguration (§5.4.1);
//! * noise generators: ssh/rlogin chatter and an untraced MySQL client
//!   sharing the database (§5.3.3);
//! * probe overhead accounting so that enabling tracing costs CPU
//!   (Figs. 12/13).
//!
//! Entry point: [`experiment::run`] with an
//! [`experiment::ExperimentConfig`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod faults;
pub mod groundtruth;
pub mod probe;
pub mod report;
pub mod spec;
pub mod world;

pub use experiment::{run, ExperimentConfig, ExperimentOutput};
pub use faults::{write_paced, FaultLog, FaultPlan, SourceFault};
pub use groundtruth::{AccuracyReport, RequestTruth, TruthCollector};
pub use probe::{ProbeSink, ProbedNode};
pub use report::ServiceMetrics;
pub use spec::{
    Fault, LbPolicy, Mix, NoiseSpec, Phases, PoolSpec, RequestType, ServiceSpec, TierSpec,
    MAX_REPLICAS,
};
pub use world::{RubisWorld, WorldConfig};
