//! Experiment harness: runs a simulated session, returns the probe log,
//! ground truth and service metrics, and correlates the log with
//! PreciseTracer — the glue used by every table/figure reproduction.

use simnet::Dist;
use tracer_core::prelude::*;
use tracer_core::raw::RawRecord;

use crate::groundtruth::{AccuracyReport, TruthCollector};
use crate::report::ServiceMetrics;
use crate::spec::{Mix, NoiseSpec, Phases, ServiceSpec};
use crate::world::{RubisWorld, WorldConfig};

/// Configuration of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Number of concurrent emulated clients.
    pub clients: usize,
    /// Workload mix (Browse_Only / Default).
    pub mix: Mix,
    /// Session phases (ramp-up / steady / ramp-down).
    pub phases: Phases,
    /// Client think time.
    pub think: Dist,
    /// Service topology, demands, faults.
    pub spec: ServiceSpec,
    /// Background noise generators.
    pub noise: NoiseSpec,
    /// RNG seed (runs are fully deterministic per seed).
    pub seed: u64,
}

impl ExperimentConfig {
    /// The paper's defaults: Browse_Only mix, full session phases,
    /// ~6.5 s exponential think time.
    pub fn paper(clients: usize) -> Self {
        ExperimentConfig {
            clients,
            mix: Mix::browse_only(),
            phases: Phases::paper(),
            think: Dist::Exp { mean: 6.5e9 },
            spec: ServiceSpec::paper_default(),
            noise: NoiseSpec::none(),
            seed: 0x5eed,
        }
    }

    /// A scaled-down variant for tests and quick benches.
    pub fn quick(clients: usize, steady_secs: u64) -> Self {
        let mut c = Self::paper(clients);
        c.phases = Phases::quick(steady_secs);
        c.think = Dist::Exp { mean: 1.5e9 };
        c
    }

    /// The paper-scale streaming stress scenario: one session producing
    /// **≥10⁶ TCP_TRACE records** (about 30k requests from 1000 hot
    /// clients plus ~300k noise activities), with skewed clocks and a
    /// widened JBoss pool so the service itself is not the bottleneck.
    /// Used by the `scale_stream` bench and the CI scale smoke to
    /// exercise correlation at the ROADMAP's heavy-traffic scale.
    pub fn scale() -> Self {
        let mut c = Self::quick(1_000, 120);
        c.think = Dist::Exp { mean: 100.0e6 };
        c.spec = c.spec.with_skew_ms(50).with_max_threads(250);
        c.noise = NoiseSpec {
            ssh_msgs_per_sec: 50.0,
            mysql_msgs_per_sec: 2_500.0,
        };
        c
    }

    /// Load-balanced multi-node tiers: two JBoss replicas behind a
    /// round-robin balancer (per-request) and two MySQL replicas behind
    /// least-connections (per-connection). One logical request now
    /// crosses whichever replicas served it — four hosts' logs must
    /// stitch into one path.
    pub fn lb() -> Self {
        let mut c = Self::quick(24, 12);
        c.seed = 0x1b0001;
        c.spec = c
            .spec
            .with_replicas(1, 2, crate::spec::LbPolicy::RoundRobin)
            .with_replicas(2, 2, crate::spec::LbPolicy::LeastConnections);
        c
    }

    /// Connection pooling with entity reuse beyond threads: all backend
    /// requests multiplex over 3 persistent web→app connections shared
    /// by every httpd process, and consecutive requests of one pooled
    /// connection are serviced by different connector threads — the
    /// paper's event-driven caveat, exercising Rule 1's byte-claims
    /// path where execution entity ≠ connection.
    pub fn pooled() -> Self {
        let mut c = Self::quick(24, 12);
        c.seed = 0x900_1ed;
        c.spec = c.spec.with_pool(3);
        c
    }

    /// Packet loss and retransmission: 1% per-segment loss on every
    /// link, TCP-style backoff retransmit. Receives arrive late and
    /// re-chunked; spurious retransmissions emit duplicate byte ranges
    /// the probe's sniffer lane logs as `retrans` records the
    /// correlator must discard.
    pub fn lossy() -> Self {
        Self::lossy_at(0.01)
    }

    /// [`ExperimentConfig::lossy`] with an explicit loss probability.
    pub fn lossy_at(loss: f64) -> Self {
        let mut c = Self::quick(16, 12);
        c.seed = 0x105_5e5;
        c.spec = c.spec.with_loss(loss);
        c
    }

    /// [`ExperimentConfig::lossy`] captured through the sniffer-based
    /// `TCP_TRACE v2` lane (lossless capture): every connection record
    /// carries `seq=`, receives are reassembled per logical message,
    /// and duplicate arrivals are logged as per-range `retrans`+`seq=`
    /// records. The corpus behind the marker-vs-range dedup
    /// equivalence property: offset arithmetic must drop exactly the
    /// records the v1 marker flags.
    pub fn lossy_v2() -> Self {
        let mut c = Self::lossy();
        c.spec = c.spec.with_sniffer_capture(0.0);
        c
    }

    /// Partial capture: the sniffer lane at 2% per-segment capture
    /// drop — see [`ExperimentConfig::partial_at`].
    pub fn partial() -> Self {
        Self::partial_at(0.02)
    }

    /// Partial capture with an explicit per-segment drop probability:
    /// the v2 sniffer lane misses each wire segment with probability
    /// `drop`; a record is lost only when every segment overlapping
    /// its byte range was missed (interior gaps heal via `seq=`
    /// arithmetic). Runs the payload-heavy
    /// [`crate::spec::Mix::bulk_browse`] mix so every message spans
    /// several segments, keeping whole-record loss quadratic in the
    /// drop rate; ground-truth accuracy quantifies what the remaining
    /// losses cost.
    pub fn partial_at(drop: f64) -> Self {
        let mut c = Self::quick(16, 12);
        c.seed = 0x9a_271a1;
        c.mix = Mix::bulk_browse();
        c.spec = c.spec.with_sniffer_capture(drop);
        c
    }

    /// Two web frontends: BEGIN activities now originate on different
    /// hosts, which exercises the sharded router's documented
    /// canonical-id divergence — batch ids follow BEGIN *delivery*
    /// order (per-host streams drained host by host), while the sharded
    /// merge renumbers by the global root order, so ids/stream order
    /// may differ while CAG content stays identical.
    pub fn multi_frontend() -> Self {
        Self::multi_frontend_n(2)
    }

    /// [`ExperimentConfig::multi_frontend`] with `k` web frontends —
    /// the distributed-correlation test bed: with BEGINs spread over
    /// `k` hosts, sessions interleave across every router process's
    /// claim stream, so the cluster merge must reassemble sessions
    /// that straddle routers. Same seed for every `k`, so ground truth
    /// grows strictly with the frontend count.
    pub fn multi_frontend_n(k: usize) -> Self {
        let mut c = Self::quick(16, 10);
        c.seed = 0x000f_2027;
        c.spec = c
            .spec
            .with_replicas(0, k, crate::spec::LbPolicy::RoundRobin);
        c
    }
}

/// Everything a run produces.
#[derive(Debug)]
pub struct ExperimentOutput {
    /// The configuration that produced this output.
    pub clients: usize,
    /// Raw TCP_TRACE records from all traced nodes.
    pub records: Vec<RawRecord>,
    /// Ground truth for accuracy evaluation.
    pub truth: TruthCollector,
    /// Client-observed service metrics.
    pub service: ServiceMetrics,
    /// Total simulation events processed.
    pub sim_events: u64,
    /// Records the sniffer capture frontend missed entirely (partial
    /// capture; 0 with the kernel probe or lossless capture). Missed
    /// records never existed in the log and are excluded from ground
    /// truth.
    pub capture_dropped: u64,
    /// The service spec used (for access-point configuration).
    pub spec: ServiceSpec,
}

impl ExperimentOutput {
    /// The access-point spec matching the deployment (the frontend port
    /// on every web replica; every tier replica's IP is internal).
    pub fn access_spec(&self) -> AccessPointSpec {
        AccessPointSpec::new([self.spec.web.port], self.spec.internal_ips())
    }

    /// A default correlator configuration for this deployment.
    pub fn correlator_config(&self, window: Nanos) -> CorrelatorConfig {
        CorrelatorConfig::new(self.access_spec()).with_window(window)
    }

    /// Correlates the log with the given window and returns the output
    /// plus the §5.2 accuracy report.
    ///
    /// # Errors
    ///
    /// Propagates correlator configuration errors.
    pub fn correlate(
        &self,
        window: Nanos,
    ) -> Result<(CorrelationOutput, AccuracyReport), TraceError> {
        self.correlate_with(self.correlator_config(window))
    }

    /// Correlates with a custom configuration (filters, ablations)
    /// through the unified [`Pipeline`] facade in batch mode.
    ///
    /// # Errors
    ///
    /// Propagates correlator configuration errors.
    pub fn correlate_with(
        &self,
        config: CorrelatorConfig,
    ) -> Result<(CorrelationOutput, AccuracyReport), TraceError> {
        self.correlate_pipeline(PipelineConfig::from(config))
    }

    /// Correlates through the unified [`Pipeline`] facade in any mode.
    ///
    /// # Errors
    ///
    /// Propagates correlator configuration errors.
    pub fn correlate_pipeline(
        &self,
        config: PipelineConfig,
    ) -> Result<(CorrelationOutput, AccuracyReport), TraceError> {
        let out = Pipeline::new(config)?.run(Source::records(self.records.clone()))?;
        let acc = self.truth.evaluate(&out.cags);
        Ok((out, acc))
    }
}

/// Runs one experiment to completion.
pub fn run(cfg: ExperimentConfig) -> ExperimentOutput {
    let clients = cfg.clients;
    let spec = cfg.spec.clone();
    let world_cfg = WorldConfig {
        spec: cfg.spec,
        mix: cfg.mix,
        clients: cfg.clients,
        phases: cfg.phases,
        think: cfg.think,
        noise: cfg.noise,
        seed: cfg.seed,
    };
    let mut sim = simnet::Simulator::new(RubisWorld::new(world_cfg));
    let mut sched = std::mem::take(sim.scheduler());
    sim.world.seed_events(&mut sched);
    *sim.scheduler() = sched;
    sim.run();
    let events = sim.events_processed();
    let world = sim.world;
    let RubisWorld {
        probe,
        truth,
        metrics,
        ..
    } = world;
    let capture_dropped = probe.capture_dropped();
    ExperimentOutput {
        clients,
        records: probe.into_records(),
        truth,
        service: metrics,
        sim_events: events,
        capture_dropped,
        spec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_correlates_perfectly() {
        let out = run(ExperimentConfig::quick(8, 10));
        assert!(out.service.completed > 10);
        let (corr, acc) = out.correlate(Nanos::from_millis(10)).unwrap();
        assert_eq!(
            acc.logged_requests, out.service.completed,
            "every completed request is ground-truth logged"
        );
        assert!(
            acc.is_perfect(),
            "accuracy must be 100%: {acc:?}; metrics {}",
            corr.metrics.summary()
        );
        for cag in corr.cags.iter().take(20) {
            cag.validate().expect("valid CAG");
        }
    }

    #[test]
    fn accuracy_holds_under_skew_and_tiny_window() {
        for skew_ms in [1, 100, 500] {
            let mut cfg = ExperimentConfig::quick(6, 8);
            cfg.spec = cfg.spec.with_skew_ms(skew_ms);
            let out = run(cfg);
            let (_, acc) = out.correlate(Nanos::from_millis(1)).unwrap();
            assert!(acc.is_perfect(), "skew {skew_ms}ms: {acc:?}");
        }
    }

    #[test]
    fn accuracy_holds_with_noise() {
        let mut cfg = ExperimentConfig::quick(6, 8);
        cfg.noise = NoiseSpec {
            ssh_msgs_per_sec: 40.0,
            mysql_msgs_per_sec: 40.0,
        };
        let out = run(cfg);
        let (corr, acc) = out.correlate(Nanos::from_millis(2)).unwrap();
        assert!(acc.is_perfect(), "{acc:?}");
        assert!(
            corr.metrics.ranker.noise_discards > 0,
            "mysql noise must exercise is_noise"
        );
    }

    #[test]
    fn default_mix_also_perfect() {
        let mut cfg = ExperimentConfig::quick(6, 8);
        cfg.mix = Mix::default_mix();
        let out = run(cfg);
        let (_, acc) = out.correlate(Nanos::from_millis(10)).unwrap();
        assert!(acc.is_perfect(), "{acc:?}");
    }

    #[test]
    fn lb_preset_uses_every_replica_and_correlates() {
        let out = run(ExperimentConfig::lb());
        assert!(out.service.completed > 10);
        // Requests really spread over both app and both db replicas.
        let hosts: std::collections::BTreeSet<String> =
            out.records.iter().map(|r| r.hostname.to_string()).collect();
        for h in ["web1", "app1", "app2", "db1", "db2"] {
            assert!(hosts.contains(h), "missing replica {h}: {hosts:?}");
        }
        let (_, acc) = out.correlate(Nanos::from_millis(10)).unwrap();
        assert!(
            acc.precision() >= 0.99 && acc.recall() >= 0.99,
            "lb accuracy: {acc:?}"
        );
    }

    #[test]
    fn pooled_preset_reuses_connections_across_entities() {
        let out = run(ExperimentConfig::pooled());
        assert!(out.service.completed > 10);
        // Few upstream channels carry many backend requests: count the
        // distinct web→app source ports of java-received requests.
        let app_ports: std::collections::BTreeSet<u16> = out
            .records
            .iter()
            .filter(|r| &*r.program == "java" && r.dst.port == out.spec.app.port)
            .map(|r| r.src.port)
            .collect();
        assert!(
            !app_ports.is_empty() && app_ports.len() <= 3,
            "pool must bound upstream connections: {app_ports:?}"
        );
        // Entity reuse beyond threads: one pooled channel is used by
        // more than one httpd process.
        let mut pids_per_port: std::collections::HashMap<u16, std::collections::BTreeSet<u32>> =
            std::collections::HashMap::new();
        for r in &out.records {
            if &*r.program == "httpd" && r.dst.port == out.spec.app.port {
                pids_per_port.entry(r.src.port).or_default().insert(r.pid);
            }
        }
        assert!(
            pids_per_port.values().any(|pids| pids.len() > 1),
            "pooled connections must be shared across httpd processes: {pids_per_port:?}"
        );
        let (_, acc) = out.correlate(Nanos::from_millis(10)).unwrap();
        assert!(
            acc.precision() >= 0.99 && acc.recall() >= 0.99,
            "pooled accuracy: {acc:?}"
        );
    }

    #[test]
    fn lossy_preset_emits_retrans_records_and_still_correlates() {
        let out = run(ExperimentConfig::lossy());
        assert!(out.service.completed > 10);
        let retrans = out.records.iter().filter(|r| r.retrans).count();
        assert!(retrans > 0, "1% loss must produce sniffer retrans records");
        let (corr, acc) = out.correlate(Nanos::from_millis(100)).unwrap();
        assert_eq!(corr.metrics.retrans_dropped, retrans as u64);
        assert!(
            acc.precision() >= 0.95 && acc.recall() >= 0.95,
            "lossy accuracy: {acc:?}"
        );
    }

    #[test]
    fn lossy_v2_preset_emits_seq_on_every_connection_record() {
        let out = run(ExperimentConfig::lossy_v2());
        assert!(out.service.completed > 10);
        assert_eq!(out.capture_dropped, 0, "lossless capture drops nothing");
        let v2 = out.records.iter().filter(|r| r.seq.is_some()).count();
        let retrans = out.records.iter().filter(|r| r.retrans).count();
        assert!(retrans > 0, "1% loss must produce duplicate-range records");
        // Only the ssh-noise fake records lack seq (there is no ssh
        // noise in this preset, so every record carries it).
        assert_eq!(v2, out.records.len());
        // Every retrans record also carries its range offset.
        assert!(out.records.iter().all(|r| !r.retrans || r.seq.is_some()));
        let (corr, acc) = out.correlate(Nanos::from_millis(100)).unwrap();
        assert_eq!(corr.metrics.v2_records, v2 as u64);
        assert_eq!(corr.metrics.retrans_dropped, retrans as u64);
        assert_eq!(corr.metrics.seq_dedup_ranges, retrans as u64);
        assert!(
            acc.precision() >= 0.95 && acc.recall() >= 0.95,
            "lossy v2 accuracy: {acc:?}"
        );
    }

    #[test]
    fn partial_preset_drops_captures_yet_correlates_accurately() {
        let out = run(ExperimentConfig::partial());
        assert!(out.service.completed > 10);
        assert!(
            out.capture_dropped > 0,
            "2% segment drop must lose some records"
        );
        assert!(out.records.iter().all(|r| r.seq.is_some()));
        let (corr, acc) = out.correlate(Nanos::from_millis(10)).unwrap();
        assert_eq!(corr.metrics.v2_records, out.records.len() as u64);
        assert!(
            acc.precision() >= 0.95 && acc.recall() >= 0.95,
            "partial-capture accuracy: precision {:.4} recall {:.4} ({} records dropped) {acc:?}",
            acc.precision(),
            acc.recall(),
            out.capture_dropped
        );
    }

    #[test]
    fn loss_and_capture_drop_combine_without_double_counting() {
        // Wire loss (duplicate ranges, retrans-marked) on top of
        // partial capture (records missing): a marked duplicate whose
        // covering receive record was itself capture-dropped is
        // uncovered at ingest — the marker must still drop it, or the
        // duplicate bytes would enter correlation as a fresh receive.
        let mut cfg = ExperimentConfig::partial_at(0.02);
        cfg.spec = cfg.spec.with_loss(0.01);
        let out = run(cfg);
        assert!(out.service.completed > 10);
        let marked = out.records.iter().filter(|r| r.retrans).count() as u64;
        assert!(marked > 0, "loss must produce duplicate-range records");
        let (corr, acc) = out.correlate(Nanos::from_millis(100)).unwrap();
        assert_eq!(
            corr.metrics.retrans_dropped, marked,
            "every marked duplicate must be dropped, covered or not"
        );
        assert!(
            acc.precision() >= 0.9 && acc.recall() >= 0.9,
            "loss+drop accuracy: {acc:?}"
        );
    }

    #[test]
    fn multi_frontend_preset_spreads_begins_across_hosts() {
        let out = run(ExperimentConfig::multi_frontend());
        let spec = out.access_spec();
        let mut begin_hosts = std::collections::BTreeSet::new();
        for r in &out.records {
            if r.op == tracer_core::raw::RawOp::Receive
                && spec.is_frontend_port(r.dst.port)
                && !spec.is_internal(r.src.ip)
            {
                begin_hosts.insert(r.hostname.to_string());
            }
        }
        assert_eq!(
            begin_hosts.len(),
            2,
            "BEGINs must originate on both frontends: {begin_hosts:?}"
        );
        let (_, acc) = out.correlate(Nanos::from_millis(10)).unwrap();
        assert!(acc.is_perfect(), "{acc:?}");
    }

    #[test]
    fn multi_frontend_n_scales_begin_hosts_with_k() {
        for k in [3, 4] {
            let out = run(ExperimentConfig::multi_frontend_n(k));
            let spec = out.access_spec();
            let mut begin_hosts = std::collections::BTreeSet::new();
            for r in &out.records {
                if r.op == tracer_core::raw::RawOp::Receive
                    && spec.is_frontend_port(r.dst.port)
                    && !spec.is_internal(r.src.ip)
                {
                    begin_hosts.insert(r.hostname.to_string());
                }
            }
            assert_eq!(
                begin_hosts.len(),
                k,
                "BEGINs must originate on all {k} frontends: {begin_hosts:?}"
            );
            let (_, acc) = out.correlate(Nanos::from_millis(10)).unwrap();
            assert!(acc.is_perfect(), "k={k}: {acc:?}");
        }
    }

    #[test]
    fn dominant_pattern_has_three_tiers() {
        let out = run(ExperimentConfig::quick(8, 10));
        let (corr, _) = out.correlate(Nanos::from_millis(10)).unwrap();
        let breakdown = BreakdownReport::dominant(&corr.cags).expect("some pattern");
        let comps: Vec<String> = breakdown
            .percentages
            .keys()
            .map(|c| c.to_string())
            .collect();
        assert!(comps.iter().any(|c| c == "httpd2java"), "{comps:?}");
        assert!(comps.iter().any(|c| c == "java2mysqld"), "{comps:?}");
        assert!(comps.iter().any(|c| c == "mysqld2mysqld"), "{comps:?}");
    }
}
