//! Project5-style convolution analysis (Aguilera et al., SOSP 2003).
//!
//! Project5's "convolution algorithm" does not trace individual
//! requests: it treats the message timestamps on each hop as spike
//! trains and cross-correlates them to estimate the delay between an
//! input stream and an output stream. The result is an *aggregate*
//! per-hop latency — useful for finding slow hops, but unable to
//! attribute latency to an individual request or distinguish request
//! classes, which is exactly the gap PreciseTracer's CAGs fill.

/// Configuration for the cross-correlation.
#[derive(Debug, Clone, Copy)]
pub struct ConvolutionConfig {
    /// Bin width in nanoseconds for the spike trains.
    pub bin_ns: u64,
    /// Maximum lag considered, in bins.
    pub max_lag_bins: usize,
}

impl Default for ConvolutionConfig {
    fn default() -> Self {
        ConvolutionConfig {
            bin_ns: 1_000_000,
            max_lag_bins: 2_000,
        }
    }
}

/// Estimates the dominant delay between an input event stream and an
/// output event stream by discrete cross-correlation, returning the lag
/// (in nanoseconds) with the highest correlation mass, or `None` when
/// either stream is empty.
///
/// Timestamps must be on comparable clocks (same node, or corrected);
/// Project5 has the same requirement and the same skew caveat.
pub fn estimate_delay(
    in_times: &[u64],
    out_times: &[u64],
    config: &ConvolutionConfig,
) -> Option<u64> {
    if in_times.is_empty() || out_times.is_empty() {
        return None;
    }
    let t0 = (*in_times.iter().min().expect("non-empty"))
        .min(*out_times.iter().min().expect("non-empty"));
    let bins = |ts: &[u64]| -> std::collections::HashMap<u64, u32> {
        let mut m = std::collections::HashMap::new();
        for &t in ts {
            *m.entry((t - t0) / config.bin_ns).or_insert(0) += 1;
        }
        m
    };
    let a = bins(in_times);
    let b = bins(out_times);
    // C(tau) = sum_t a(t) * b(t + tau) for tau in 0..max_lag.
    let mut best = (0u64, 0u64); // (score, lag_bins)
    for lag in 0..config.max_lag_bins as u64 {
        let mut score = 0u64;
        for (&t, &ca) in &a {
            if let Some(&cb) = b.get(&(t + lag)) {
                score += ca as u64 * cb as u64;
            }
        }
        if score > best.0 {
            best = (score, lag);
        }
    }
    if best.0 == 0 {
        return None;
    }
    Some(best.1 * config.bin_ns + config.bin_ns / 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_constant_delay() {
        let cfg = ConvolutionConfig {
            bin_ns: 1_000,
            max_lag_bins: 100,
        };
        let input: Vec<u64> = (0..200u64).map(|i| i * 37_000).collect();
        let output: Vec<u64> = input.iter().map(|t| t + 12_000).collect();
        let d = estimate_delay(&input, &output, &cfg).unwrap();
        assert!((11_000..=13_500).contains(&d), "d={d}");
    }

    #[test]
    fn recovers_delay_with_jitter() {
        let cfg = ConvolutionConfig {
            bin_ns: 1_000,
            max_lag_bins: 100,
        };
        let input: Vec<u64> = (0..500u64).map(|i| i * 41_000).collect();
        let output: Vec<u64> = input
            .iter()
            .enumerate()
            .map(|(i, t)| t + 20_000 + (i as u64 % 5) * 300)
            .collect();
        let d = estimate_delay(&input, &output, &cfg).unwrap();
        assert!((19_000..=23_000).contains(&d), "d={d}");
    }

    #[test]
    fn empty_streams_yield_none() {
        let cfg = ConvolutionConfig::default();
        assert_eq!(estimate_delay(&[], &[1], &cfg), None);
        assert_eq!(estimate_delay(&[1], &[], &cfg), None);
    }

    #[test]
    fn uncorrelated_streams_give_low_quality_answer() {
        // The algorithm always answers something when mass overlaps —
        // Project5's known weakness: it cannot tell you it is guessing.
        let cfg = ConvolutionConfig {
            bin_ns: 1_000,
            max_lag_bins: 50,
        };
        let input: Vec<u64> = (0..50u64).map(|i| i * 7_000).collect();
        let output: Vec<u64> = (0..50u64).map(|i| 1_000_000 + i * 13_000).collect();
        // No panic; any Option is acceptable.
        let _ = estimate_delay(&input, &output, &cfg);
    }
}
