//! Shared accuracy evaluation for baseline tracers: compares inferred
//! per-request record sets against ground truth, using the same
//! definition as the paper (§5.2): a path is correct iff its record set
//! equals a request's record set exactly.

use std::collections::HashMap;

/// Accuracy of a baseline's inferred paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineAccuracy {
    /// Ground-truth requests evaluated.
    pub requests: u64,
    /// Paths matching a request exactly.
    pub correct: u64,
    /// Paths matching no request.
    pub wrong: u64,
}

impl BaselineAccuracy {
    /// `correct / requests` (1.0 when there are no requests).
    pub fn accuracy(&self) -> f64 {
        if self.requests == 0 {
            1.0
        } else {
            self.correct as f64 / self.requests as f64
        }
    }
}

/// Evaluates inferred paths (as sorted uid vectors) against truth sets
/// (also sorted).
pub fn evaluate(inferred: &[Vec<u64>], truth: &[Vec<u64>]) -> BaselineAccuracy {
    let mut truth_index: HashMap<&[u64], u64> = HashMap::new();
    for t in truth {
        truth_index.insert(t.as_slice(), 0);
    }
    let mut correct = 0u64;
    let mut wrong = 0u64;
    for p in inferred {
        match truth_index.get_mut(p.as_slice()) {
            Some(hits) if *hits == 0 => {
                *hits = 1;
                correct += 1;
            }
            _ => wrong += 1,
        }
    }
    BaselineAccuracy {
        requests: truth.len() as u64,
        correct,
        wrong,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_matches_count() {
        let truth = vec![vec![1, 2, 3], vec![4, 5]];
        let inferred = vec![vec![1, 2, 3], vec![4, 5]];
        let a = evaluate(&inferred, &truth);
        assert_eq!(a.correct, 2);
        assert_eq!(a.wrong, 0);
        assert_eq!(a.accuracy(), 1.0);
    }

    #[test]
    fn partial_and_duplicate_matches_are_wrong() {
        let truth = vec![vec![1, 2, 3]];
        let inferred = vec![vec![1, 2], vec![1, 2, 3], vec![1, 2, 3]];
        let a = evaluate(&inferred, &truth);
        assert_eq!(a.correct, 1);
        assert_eq!(a.wrong, 2);
    }

    #[test]
    fn empty_truth_is_perfect() {
        let a = evaluate(&[], &[]);
        assert_eq!(a.accuracy(), 1.0);
    }
}
