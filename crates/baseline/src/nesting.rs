//! WAP5-style nesting inference (Reynolds et al., WWW 2006).
//!
//! WAP5 traces at per-**process** granularity via library interposition:
//! it sees which process sent/received which bytes but has no thread
//! identifiers. Messages are paired across the wire (that part can be
//! exact, like PreciseTracer's size-based matching); the *causal* step
//! is a heuristic: an outgoing message from process P is nested under
//! the most recent incoming message of P.
//!
//! Under low concurrency the heuristic is usually right; once a process
//! multiplexes concurrent requests (a JBoss with many worker threads,
//! MySQL with per-connection threads — all one pid), the most-recent
//! rule cross-attributes messages and path accuracy collapses. That is
//! the contrast the PreciseTracer paper draws (§6.1).

use std::collections::HashMap;
use std::sync::Arc;

use tracer_core::access::{AccessPointSpec, Classifier};
use tracer_core::activity::{ActivityType, Channel, LocalTime};
use tracer_core::raw::RawRecord;

/// Tuning for the nesting inference.
#[derive(Debug, Clone, Copy)]
pub struct NestingConfig {
    /// Maximum time an incoming message can be considered the cause of
    /// an outgoing one (nanoseconds of the *receiving* node's clock).
    pub max_causal_gap: u64,
    /// Maximum gap between send chunks of one logical message
    /// (nanoseconds); WAP5 reconstructs message boundaries from timing,
    /// so chunks further apart start a new message.
    pub merge_gap: u64,
}

impl Default for NestingConfig {
    fn default() -> Self {
        NestingConfig {
            max_causal_gap: 10_000_000_000,
            merge_gap: 2_000_000,
        }
    }
}

/// One logical message reconstructed from send/receive chunks.
#[derive(Debug, Clone)]
struct Message {
    /// (hostname, pid) of the sender — process granularity only.
    send_proc: (Arc<str>, u32),
    recv_proc: Option<(Arc<str>, u32)>,
    send_ts: LocalTime,
    /// Receive completion on the receiver's clock.
    recv_ts: Option<LocalTime>,
    /// Ground-truth record uids of every chunk (both sides).
    tags: Vec<u64>,
    /// True when this message starts a request (client → frontend).
    is_begin: bool,
    /// True when this message ends a request (frontend → client);
    /// retained for path labelling even though inference treats END
    /// messages like any other outgoing message.
    #[allow(dead_code)]
    is_end: bool,
}

/// An inferred causal path: the record uids WAP5 would report for one
/// request.
#[derive(Debug, Clone)]
pub struct InferredPath {
    /// Sorted ground-truth uids of all records in the path.
    pub tags: Vec<u64>,
    /// Timestamp of the root (request arrival, frontend clock).
    pub root_ts: LocalTime,
}

/// Runs nesting inference over a raw log.
///
/// `access` plays the same role as for PreciseTracer: it identifies the
/// frontend so request roots can be found.
pub fn infer_paths(
    records: &[RawRecord],
    access: &AccessPointSpec,
    config: &NestingConfig,
) -> Vec<InferredPath> {
    let classifier = Classifier::new(access.clone());
    // ---- phase 1: message reconstruction (chunk pairing by bytes) ----
    // Per directed channel: FIFO of partially received messages.
    struct Pending {
        msg: usize,
        remaining: u64,
        last_send_ts: LocalTime,
    }
    let mut messages: Vec<Message> = Vec::new();
    let mut pendings: HashMap<Channel, Vec<Pending>> = HashMap::new();
    // Records must be processed per node in time order; merge-sort all
    // records by (hostname, ts) first, then walk sends before receives
    // per channel via the FIFO.
    let mut ordered: Vec<&RawRecord> = records.iter().collect();
    ordered.sort_by(|a, b| a.ts.cmp(&b.ts).then(a.hostname.cmp(&b.hostname)));
    for rec in ordered {
        let act = classifier.classify(rec);
        let chan = rec.channel();
        match act.ty {
            ActivityType::Send | ActivityType::End => {
                let q = pendings.entry(chan).or_default();
                // Merge into the last open message from the same process
                // if it is still unreceived (same chunking rule as the
                // precise engine, minus context knowledge).
                if let Some(last) = q.last_mut() {
                    let m = &mut messages[last.msg];
                    if m.send_proc.1 == rec.pid
                        && m.recv_ts.is_none()
                        && rec
                            .ts
                            .as_nanos()
                            .saturating_sub(last.last_send_ts.as_nanos())
                            <= config.merge_gap
                    {
                        m.tags.push(rec.tag);
                        last.remaining += rec.size;
                        last.last_send_ts = rec.ts;
                        continue;
                    }
                }
                let msg = messages.len();
                messages.push(Message {
                    send_proc: (Arc::clone(&rec.hostname), rec.pid),
                    recv_proc: None,
                    send_ts: rec.ts,
                    recv_ts: None,
                    tags: vec![rec.tag],
                    is_begin: false,
                    is_end: act.ty == ActivityType::End,
                });
                q.push(Pending {
                    msg,
                    remaining: rec.size,
                    last_send_ts: rec.ts,
                });
            }
            ActivityType::Receive | ActivityType::Begin => {
                if act.ty == ActivityType::Begin {
                    // Client side is untraced: synthesize a root message.
                    let msg = messages.len();
                    messages.push(Message {
                        send_proc: (Arc::from("client"), 0),
                        recv_proc: Some((Arc::clone(&rec.hostname), rec.pid)),
                        send_ts: rec.ts,
                        recv_ts: Some(rec.ts),
                        tags: vec![rec.tag],
                        is_begin: true,
                        is_end: false,
                    });
                    let _ = msg;
                    continue;
                }
                let Some(q) = pendings.get_mut(&chan) else {
                    continue;
                };
                if q.is_empty() {
                    continue; // noise receive
                }
                let mut need = rec.size;
                while need > 0 && !q.is_empty() {
                    let front = &mut q[0];
                    let m = &mut messages[front.msg];
                    m.tags.push(rec.tag);
                    m.recv_proc = Some((Arc::clone(&rec.hostname), rec.pid));
                    if need >= front.remaining {
                        need -= front.remaining;
                        m.recv_ts = Some(rec.ts);
                        q.remove(0);
                    } else {
                        front.remaining -= need;
                        need = 0;
                    }
                }
            }
        }
    }
    // ---- phase 2: nesting (most-recent-incoming heuristic) -----------
    // Incoming messages per process, ordered by recv_ts.
    let mut incoming: HashMap<(Arc<str>, u32), Vec<usize>> = HashMap::new();
    for (i, m) in messages.iter().enumerate() {
        if let (Some(proc_id), Some(_)) = (m.recv_proc.clone(), m.recv_ts) {
            incoming.entry(proc_id).or_default().push(i);
        }
    }
    for v in incoming.values_mut() {
        v.sort_by_key(|&i| messages[i].recv_ts);
    }
    // children[parent message] = messages it "caused".
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); messages.len()];
    for (i, m) in messages.iter().enumerate() {
        if m.is_begin {
            continue;
        }
        let Some(inc) = incoming.get(&m.send_proc) else {
            continue;
        };
        // Most recent incoming message of the sending process whose
        // receive completed at or before this send.
        let mut best: Option<usize> = None;
        for &j in inc {
            let r = messages[j].recv_ts.expect("indexed by recv_ts");
            if r <= m.send_ts && m.send_ts.as_nanos() - r.as_nanos() <= config.max_causal_gap {
                best = Some(j);
            } else if r > m.send_ts {
                break;
            }
        }
        if let Some(j) = best {
            children[j].push(i);
        }
    }
    // ---- phase 3: collect trees from request roots --------------------
    let mut paths = Vec::new();
    for (i, m) in messages.iter().enumerate() {
        if !m.is_begin {
            continue;
        }
        let mut tags = Vec::new();
        let mut stack = vec![i];
        let mut guard = 0;
        while let Some(k) = stack.pop() {
            guard += 1;
            if guard > messages.len() * 2 {
                break; // cycles cannot happen, but stay total
            }
            tags.extend(messages[k].tags.iter().copied().filter(|&t| t != 0));
            stack.extend(children[k].iter().copied());
        }
        tags.sort_unstable();
        tags.dedup();
        paths.push(InferredPath {
            tags,
            root_ts: m.send_ts,
        });
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracer_core::raw::parse_log;

    fn access() -> AccessPointSpec {
        AccessPointSpec::new(
            [80],
            ["10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap()],
        )
    }

    /// One sequential request: nesting gets it right.
    #[test]
    fn sequential_request_inferred_correctly() {
        let log = "\
            1000 web httpd 7 7 RECEIVE 192.168.0.9:5000-10.0.0.1:80 120\n\
            2000 web httpd 7 7 SEND 10.0.0.1:4001-10.0.0.2:9000 64\n\
            2500 app java 9 21 RECEIVE 10.0.0.1:4001-10.0.0.2:9000 64\n\
            4000 app java 9 21 SEND 10.0.0.2:9000-10.0.0.1:4001 256\n\
            4400 web httpd 7 7 RECEIVE 10.0.0.2:9000-10.0.0.1:4001 256\n\
            5000 web httpd 7 7 SEND 10.0.0.1:80-192.168.0.9:5000 512\n";
        let mut records = parse_log(log).unwrap();
        for (i, r) in records.iter_mut().enumerate() {
            r.tag = i as u64 + 1;
        }
        let paths = infer_paths(&records, &access(), &NestingConfig::default());
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].tags, vec![1, 2, 3, 4, 5, 6]);
    }

    /// Two interleaved requests through the *same* app process (pid 9,
    /// different threads): the most-recent heuristic cross-attributes.
    #[test]
    fn interleaved_requests_confuse_nesting() {
        let log = "\
            1000 web httpd 7 7 RECEIVE 192.168.0.9:5000-10.0.0.1:80 120\n\
            1100 web httpd 8 8 RECEIVE 192.168.0.9:5001-10.0.0.1:80 120\n\
            2000 web httpd 7 7 SEND 10.0.0.1:4001-10.0.0.2:9000 64\n\
            2100 web httpd 8 8 SEND 10.0.0.1:4002-10.0.0.2:9000 64\n\
            2500 app java 9 21 RECEIVE 10.0.0.1:4001-10.0.0.2:9000 64\n\
            2600 app java 9 22 RECEIVE 10.0.0.1:4002-10.0.0.2:9000 64\n\
            4000 app java 9 21 SEND 10.0.0.2:9000-10.0.0.1:4001 256\n\
            4100 app java 9 22 SEND 10.0.0.2:9000-10.0.0.1:4002 256\n\
            4400 web httpd 7 7 RECEIVE 10.0.0.2:9000-10.0.0.1:4001 256\n\
            4500 web httpd 8 8 RECEIVE 10.0.0.2:9000-10.0.0.1:4002 256\n\
            5000 web httpd 7 7 SEND 10.0.0.1:80-192.168.0.9:5000 512\n\
            5100 web httpd 8 8 SEND 10.0.0.1:80-192.168.0.9:5001 512\n";
        let mut records = parse_log(log).unwrap();
        for (i, r) in records.iter_mut().enumerate() {
            r.tag = i as u64 + 1;
        }
        let paths = infer_paths(&records, &access(), &NestingConfig::default());
        assert_eq!(paths.len(), 2);
        // Request 1's java reply (sent at 4000 by pid 9) is attributed to
        // the most recent incoming of pid 9 — request 2's query (2600) —
        // so at least one path must be wrong.
        let expected1 = vec![1, 3, 5, 7, 9, 11];
        let expected2 = vec![2, 4, 6, 8, 10, 12];
        let correct = paths
            .iter()
            .filter(|p| p.tags == expected1 || p.tags == expected2)
            .count();
        assert!(
            correct < 2,
            "nesting should err on interleaved load: {paths:?}"
        );
    }

    #[test]
    fn noise_receive_is_ignored() {
        let log = "\
            1000 web httpd 7 7 RECEIVE 192.168.0.9:5000-10.0.0.1:80 120\n\
            1500 web httpd 7 7 RECEIVE 9.9.9.9:1-10.0.0.1:4009 64\n\
            5000 web httpd 7 7 SEND 10.0.0.1:80-192.168.0.9:5000 512\n";
        let mut records = parse_log(log).unwrap();
        for (i, r) in records.iter_mut().enumerate() {
            r.tag = i as u64 + 1;
        }
        let paths = infer_paths(&records, &access(), &NestingConfig::default());
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].tags, vec![1, 3]);
    }

    #[test]
    fn chunked_messages_pair_by_bytes() {
        let log = "\
            1000 web httpd 7 7 RECEIVE 192.168.0.9:5000-10.0.0.1:80 120\n\
            2000 web httpd 7 7 SEND 10.0.0.1:4001-10.0.0.2:9000 900\n\
            2100 web httpd 7 7 SEND 10.0.0.1:4001-10.0.0.2:9000 544\n\
            2500 app java 9 21 RECEIVE 10.0.0.1:4001-10.0.0.2:9000 512\n\
            2600 app java 9 21 RECEIVE 10.0.0.1:4001-10.0.0.2:9000 512\n\
            2700 app java 9 21 RECEIVE 10.0.0.1:4001-10.0.0.2:9000 420\n\
            4000 app java 9 21 SEND 10.0.0.2:9000-10.0.0.1:4001 256\n\
            4400 web httpd 7 7 RECEIVE 10.0.0.2:9000-10.0.0.1:4001 256\n\
            5000 web httpd 7 7 SEND 10.0.0.1:80-192.168.0.9:5000 512\n";
        let mut records = parse_log(log).unwrap();
        for (i, r) in records.iter_mut().enumerate() {
            r.tag = i as u64 + 1;
        }
        let paths = infer_paths(&records, &access(), &NestingConfig::default());
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].tags, (1..=9).collect::<Vec<u64>>());
    }

    #[test]
    fn causal_gap_limits_attribution() {
        // The app's send comes 20s after its only incoming message: with
        // the default 10s gap it is left unattributed.
        let log = "\
            1000 web httpd 7 7 RECEIVE 192.168.0.9:5000-10.0.0.1:80 120\n\
            2000 web httpd 7 7 SEND 10.0.0.1:4001-10.0.0.2:9000 64\n\
            2500 app java 9 21 RECEIVE 10.0.0.1:4001-10.0.0.2:9000 64\n\
            20000002500 app java 9 21 SEND 10.0.0.2:9000-10.0.0.1:4001 256\n\
            20000003000 web httpd 7 7 RECEIVE 10.0.0.2:9000-10.0.0.1:4001 256\n\
            20000004000 web httpd 7 7 SEND 10.0.0.1:80-192.168.0.9:5000 512\n";
        let mut records = parse_log(log).unwrap();
        for (i, r) in records.iter_mut().enumerate() {
            r.tag = i as u64 + 1;
        }
        let paths = infer_paths(&records, &access(), &NestingConfig::default());
        assert_eq!(paths.len(), 1);
        assert!(!paths[0].tags.contains(&4), "{:?}", paths[0].tags);
    }
}
