//! # baseline — probabilistic black-box tracing comparators
//!
//! PreciseTracer's related work (§6.1) contrasts it against
//! *probabilistic* black-box correlation: WAP5's nesting algorithm and
//! Project5's convolution algorithm accept imprecision in exchange for
//! weaker observation requirements. This crate implements both so the
//! reproduction can quantify the paper's central qualitative claim —
//! precise correlation vs. probabilistic inference — on identical logs
//! (experiment EXT-1 in DESIGN.md):
//!
//! * [`nesting`] — WAP5-style per-**process** causal inference: message
//!   pairing is exact, but a process's outgoing message is attributed to
//!   the *most recent* incoming message of that process. Without thread
//!   identifiers, concurrent requests multiplexed in one process (JBoss,
//!   MySQL) get cross-attributed as load rises.
//! * [`convolution`] — Project5-style aggregate analysis: cross-correlates
//!   per-hop message streams to estimate hop delays; produces no
//!   per-request paths at all.
//! * [`accuracy`] — a shared evaluator comparing inferred record sets
//!   against ground truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod convolution;
pub mod nesting;

pub use accuracy::{evaluate, BaselineAccuracy};
pub use convolution::{estimate_delay, ConvolutionConfig};
pub use nesting::{infer_paths, InferredPath, NestingConfig};
