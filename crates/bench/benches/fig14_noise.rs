//! Fig. 14 bench: correlation time with and without heavy noise
//! traffic (the paper injects ~200K noise activities).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use multitier::{ExperimentConfig, NoiseSpec};
use tracer_core::{Nanos, Pipeline, Source};

fn bench(c: &mut Criterion) {
    let clean = multitier::run(ExperimentConfig::quick(100, 8));
    let noisy = {
        let mut cfg = ExperimentConfig::quick(100, 8);
        cfg.noise = NoiseSpec {
            ssh_msgs_per_sec: 100.0,
            mysql_msgs_per_sec: 800.0,
        };
        multitier::run(cfg)
    };
    let mut g = c.benchmark_group("fig14_noise");
    g.sample_size(10);
    for (name, out) in [("no_noise", &clean), ("noise", &noisy)] {
        let config = out.correlator_config(Nanos::from_millis(2));
        g.bench_with_input(BenchmarkId::new("correlate", name), out, |b, out| {
            b.iter(|| {
                let corr = Pipeline::new((config.clone()).into())
                    .unwrap()
                    .run(Source::records(out.records.clone()))
                    .expect("config");
                let acc = out.truth.evaluate(&corr.cags);
                assert!(acc.is_perfect(), "{acc:?}");
                corr.metrics.ranker.noise_discards
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
