//! §5.2 bench: the full accuracy-validation pipeline — simulate with
//! skewed clocks and noise, correlate with a tiny window, evaluate
//! against ground truth (must be 100%).

use criterion::{criterion_group, criterion_main, Criterion};
use multitier::{ExperimentConfig, NoiseSpec};
use tracer_core::{Nanos, Pipeline, Source};

fn bench(c: &mut Criterion) {
    let mut cfg = ExperimentConfig::quick(60, 8);
    cfg.spec = cfg.spec.with_skew_ms(250);
    cfg.noise = NoiseSpec {
        ssh_msgs_per_sec: 40.0,
        mysql_msgs_per_sec: 80.0,
    };
    let out = multitier::run(cfg);
    let config = out.correlator_config(Nanos::from_millis(1));
    let mut g = c.benchmark_group("accuracy");
    g.sample_size(10);
    g.bench_function("trace_and_evaluate", |b| {
        b.iter(|| {
            let corr = Pipeline::new((config.clone()).into())
                .unwrap()
                .run(Source::records(out.records.clone()))
                .expect("config");
            let acc = out.truth.evaluate(&corr.cags);
            assert!(acc.is_perfect(), "{acc:?}");
            acc.correct_paths
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
