//! Fig. 9 bench: correlation time vs number of serviced requests. The
//! paper's claim is linearity; the bench measures correlation wall time
//! on logs of two sizes so the ratio can be checked against the request
//! ratio.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use multitier::ExperimentConfig;
use tracer_core::{Nanos, Pipeline, Source};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig09_correlation");
    g.sample_size(10);
    for clients in [50usize, 200] {
        let out = multitier::run(ExperimentConfig::quick(clients, 10));
        let config = out.correlator_config(Nanos::from_millis(10));
        g.throughput(Throughput::Elements(out.records.len() as u64));
        g.bench_with_input(
            BenchmarkId::new("correlate", out.service.completed),
            &out,
            |b, out| {
                b.iter(|| {
                    let corr = Pipeline::new((config.clone()).into())
                        .unwrap()
                        .run(Source::records(out.records.clone()))
                        .expect("config");
                    assert_eq!(corr.cags.len() as u64, out.service.completed);
                    corr.cags.len()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
