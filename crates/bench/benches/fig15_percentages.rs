//! Fig. 15 bench: pattern classification + latency-percentage analysis
//! over a correlated session (the analysis half of performance
//! debugging).

use criterion::{criterion_group, criterion_main, Criterion};
use multitier::ExperimentConfig;
use tracer_core::pattern::PatternAggregator;
use tracer_core::{BreakdownReport, Nanos};

fn bench(c: &mut Criterion) {
    let out = multitier::run(ExperimentConfig::quick(150, 10));
    let (corr, acc) = out.correlate(Nanos::from_millis(10)).expect("config");
    assert!(acc.is_perfect());
    let mut g = c.benchmark_group("fig15_percentages");
    g.sample_size(20);
    g.bench_function("pattern_aggregation", |b| {
        b.iter(|| {
            let mut agg = PatternAggregator::new();
            agg.add_all(&corr.cags);
            agg.average_paths().len()
        })
    });
    g.bench_function("dominant_breakdown", |b| {
        b.iter(|| BreakdownReport::dominant(&corr.cags).map(|r| r.percentages.len()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
