//! Fig. 11 bench: correlator peak memory vs sliding window. Criterion
//! times the runs; the peak-byte gauge for each window is printed once
//! so the series can be compared with the figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use multitier::ExperimentConfig;
use tracer_core::{Nanos, Pipeline, Source};

fn bench(c: &mut Criterion) {
    let out = multitier::run(ExperimentConfig::quick(150, 10));
    for window_ms in [1u64, 1_000, 100_000] {
        let config = out.correlator_config(Nanos::from_millis(window_ms));
        let corr = Pipeline::new((config).into())
            .unwrap()
            .run(Source::records(out.records.clone()))
            .expect("config");
        println!(
            "fig11: window {:>6} ms -> peak memory {:>12} bytes",
            window_ms, corr.metrics.peak_bytes
        );
    }
    let mut g = c.benchmark_group("fig11_memory");
    g.sample_size(10);
    for window_ms in [1u64, 100_000] {
        let config = out.correlator_config(Nanos::from_millis(window_ms));
        g.bench_with_input(
            BenchmarkId::new("window_ms", window_ms),
            &config,
            |b, cfg| {
                b.iter(|| {
                    Pipeline::new((cfg.clone()).into())
                        .unwrap()
                        .run(Source::records(out.records.clone()))
                        .expect("config")
                        .metrics
                        .peak_bytes
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
