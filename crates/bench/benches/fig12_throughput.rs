//! Fig. 12/13 bench: the probe's cost — simulated session with tracing
//! enabled vs disabled (the service-side overhead the paper bounds at
//! 3.7% throughput / <30% response time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use multitier::ExperimentConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_throughput");
    g.sample_size(10);
    for &(name, tracing) in &[("disabled", false), ("enabled", true)] {
        g.bench_with_input(BenchmarkId::new("probe", name), &tracing, |b, &t| {
            b.iter(|| {
                let mut cfg = ExperimentConfig::quick(100, 8);
                cfg.spec = cfg.spec.with_tracing(t);
                let out = multitier::run(cfg);
                (out.service.completed, out.records.len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
