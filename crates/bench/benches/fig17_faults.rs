//! Fig. 17 bench: fault-signature extraction — correlate a faulty run
//! and localize the problem from the latency-percentage diff.

use criterion::{criterion_group, criterion_main, Criterion};
use multitier::{ExperimentConfig, Fault};
use simnet::Dist;
use tracer_core::{BreakdownReport, Diagnosis, DiffReport, Nanos};

fn breakdown(faults: Vec<Fault>) -> BreakdownReport {
    let mut cfg = ExperimentConfig::quick(80, 8);
    for f in faults {
        cfg.spec = cfg.spec.with_fault(f);
    }
    let out = multitier::run(cfg);
    let (corr, _) = out.correlate(Nanos::from_millis(10)).expect("config");
    BreakdownReport::dominant(&corr.cags).expect("pattern")
}

fn bench(c: &mut Criterion) {
    let normal = breakdown(vec![]);
    let faulty = breakdown(vec![Fault::EjbDelay {
        delay: Dist::Exp { mean: 80e6 },
    }]);
    let mut g = c.benchmark_group("fig17_faults");
    g.sample_size(30);
    g.bench_function("diff_and_localize", |b| {
        b.iter(|| {
            let diff = DiffReport::between(&normal, &faulty);
            Diagnosis::localize(&diff, 8.0).map(|d| d.delta)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
