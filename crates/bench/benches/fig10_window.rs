//! Fig. 10 bench: correlation time as a function of the sliding time
//! window, on one fixed log.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use multitier::ExperimentConfig;
use tracer_core::{Nanos, Pipeline, Source};

fn bench(c: &mut Criterion) {
    let out = multitier::run(ExperimentConfig::quick(150, 10));
    let mut g = c.benchmark_group("fig10_window");
    g.sample_size(10);
    for window_ms in [1u64, 100, 10_000] {
        let config = out.correlator_config(Nanos::from_millis(window_ms));
        g.bench_with_input(
            BenchmarkId::new("window_ms", window_ms),
            &config,
            |b, cfg| {
                b.iter(|| {
                    Pipeline::new((cfg.clone()).into())
                        .unwrap()
                        .run(Source::records(out.records.clone()))
                        .expect("config")
                        .cags
                        .len()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
