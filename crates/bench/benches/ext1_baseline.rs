//! EXT-1 bench: PreciseTracer vs WAP5-style nesting on the same log —
//! both wall time and (printed once) accuracy.

use baseline::{evaluate, infer_paths, NestingConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use multitier::ExperimentConfig;
use tracer_core::{Nanos, Pipeline, Source};

fn bench(c: &mut Criterion) {
    let out = multitier::run(ExperimentConfig::quick(120, 8));
    let config = out.correlator_config(Nanos::from_millis(10));
    let truth_sets: Vec<Vec<u64>> = out
        .truth
        .requests()
        .filter(|r| r.completed.is_some() && !r.records.is_empty())
        .map(|r| {
            let mut v = r.records.clone();
            v.sort_unstable();
            v
        })
        .collect();
    // One-off accuracy comparison for the report.
    let paths: Vec<Vec<u64>> =
        infer_paths(&out.records, &out.access_spec(), &NestingConfig::default())
            .into_iter()
            .map(|p| p.tags)
            .collect();
    let nest_acc = evaluate(&paths, &truth_sets);
    println!(
        "ext1: nesting accuracy at this load = {:.1}%",
        nest_acc.accuracy() * 100.0
    );

    let mut g = c.benchmark_group("ext1_baseline");
    g.sample_size(10);
    g.bench_function("precise", |b| {
        b.iter(|| {
            Pipeline::new((config.clone()).into())
                .unwrap()
                .run(Source::records(out.records.clone()))
                .expect("config")
                .cags
                .len()
        })
    });
    g.bench_function("nesting", |b| {
        b.iter(|| infer_paths(&out.records, &out.access_spec(), &NestingConfig::default()).len())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
