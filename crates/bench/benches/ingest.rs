//! `ingest` bench: the parallel scan front-end against the sequential
//! parse, one-billion-row-challenge style — same rendered TCP_TRACE
//! text, chunked across worker threads on record boundaries, no
//! per-field allocation.
//!
//! The interesting numbers (also recorded per-commit by
//! `repro --quick --json scale` into `BENCH_baseline.json` as the
//! `scale.ingest_*` and `scale.binary_*` keys): records/s for the
//! borrowed parallel scan, the interning parallel parse, the
//! sequential baseline, and the PTBIN binary encode/decode paths. On a
//! multi-core socket the parallel scan should approach memory
//! bandwidth; on one core it must still clear 5x the batch
//! correlation rate so ingest is never the pipeline's bottleneck; the
//! fixed-width PTBIN decode should beat the text scan by well over 2x.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use multitier::ExperimentConfig;
use tracer_core::binfmt;
use tracer_core::raw::parse_log;
use tracer_core::{parse_log_parallel, parse_refs_parallel};

const INGEST_THREADS: usize = 4;

fn bench(c: &mut Criterion) {
    let out = multitier::run(ExperimentConfig::scale());
    let mut text = String::with_capacity(out.records.len() * 72);
    for r in &out.records {
        text.push_str(&r.to_string());
        text.push('\n');
    }
    let records = out.records.len();
    drop(out);

    let mut g = c.benchmark_group("ingest");
    g.sample_size(10);
    g.throughput(Throughput::Elements(records as u64));

    g.bench_function("parse_log_seq", |b| {
        b.iter(|| parse_log(&text).expect("valid log").len())
    });

    g.bench_function("parse_log_parallel_x4", |b| {
        b.iter(|| {
            parse_log_parallel(&text, INGEST_THREADS)
                .expect("valid log")
                .len()
        })
    });

    g.bench_function("parse_refs_parallel_x4", |b| {
        b.iter(|| {
            parse_refs_parallel(&text, INGEST_THREADS)
                .expect("valid log")
                .len()
        })
    });

    // PTBIN: the fixed-width binary form of the same corpus. Decode
    // skips text scanning entirely, so the decode legs should sit well
    // above even the SWAR-accelerated parallel text scan.
    let bin = binfmt::encode_text(&text, INGEST_THREADS).expect("valid log");

    g.bench_function("ptbin_encode_x4", |b| {
        b.iter(|| {
            binfmt::encode_text(&text, INGEST_THREADS)
                .expect("valid log")
                .len()
        })
    });

    g.bench_function("ptbin_decode_seq", |b| {
        b.iter(|| binfmt::decode_refs(&bin).expect("valid stream").len())
    });

    g.bench_function("ptbin_decode_x4", |b| {
        b.iter(|| {
            binfmt::decode_refs_parallel(&bin, INGEST_THREADS)
                .expect("valid stream")
                .len()
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
