//! Fig. 8 bench: end-to-end simulated session throughput (requests
//! serviced per wall-second of simulation) at increasing client counts.
//! The figure itself plots serviced requests vs clients; this bench
//! times the substrate that generates them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use multitier::ExperimentConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig08_requests");
    g.sample_size(10);
    for clients in [50usize, 200] {
        g.bench_with_input(BenchmarkId::new("simulate", clients), &clients, |b, &n| {
            b.iter(|| {
                let out = multitier::run(ExperimentConfig::quick(n, 10));
                assert!(out.service.completed > 0);
                out.service.completed
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
