//! `scale_stream` bench: correlation throughput at the ROADMAP's
//! paper scale — one simulated session of ≥10⁶ TCP_TRACE records
//! (~30k requests + ~300k noise activities, skewed clocks), driven
//! through the batch drain and through the streaming path under an
//! explicit memory budget.
//!
//! The interesting numbers (also recorded per-commit by
//! `repro --quick --json scale` into `BENCH_baseline.json`):
//! records/s for each mode, and the peak resident bytes of the
//! streaming run, which must stay under the configured budget.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use multitier::ExperimentConfig;
use tracer_core::{Mode, Nanos, Pipeline, PipelineConfig, Source};

/// Streaming memory budget: comfortably above the scenario's natural
/// working set (~2 MiB), so the budget bounds the run without evicting
/// live paths.
const BUDGET: usize = 8 << 20;

fn bench(c: &mut Criterion) {
    let out = multitier::run(ExperimentConfig::scale());
    assert!(
        out.records.len() >= 1_000_000,
        "scale scenario must produce >= 10^6 records, got {}",
        out.records.len()
    );
    let config = out.correlator_config(Nanos::from_millis(10));

    let mut g = c.benchmark_group("scale_stream");
    g.sample_size(2);
    g.throughput(Throughput::Elements(out.records.len() as u64));

    g.bench_function("batch_1M", |b| {
        b.iter(|| {
            Pipeline::new(config.clone().into())
                .unwrap()
                .run(Source::records(out.records.clone()))
                .expect("valid config")
                .cags
                .len()
        })
    });

    g.bench_function("stream_1M_budget8MiB", |b| {
        b.iter(|| {
            let mut sc = Pipeline::new(
                PipelineConfig::from(config.clone().with_memory_budget(BUDGET))
                    .with_mode(Mode::Streaming),
            )
            .unwrap()
            .session()
            .expect("valid config");
            let mut cags = 0usize;
            for (i, rec) in out.records.iter().cloned().enumerate() {
                sc.push(rec).expect("not finished");
                if i % 4096 == 0 {
                    cags += sc.poll().expect("not finished").len();
                }
            }
            let fin = sc.finish().expect("single finish");
            cags += fin.cags.len();
            assert!(
                fin.metrics.peak_bytes <= BUDGET,
                "peak {} bytes exceeds the {} byte budget",
                fin.metrics.peak_bytes,
                BUDGET
            );
            cags
        })
    });

    g.bench_function("stream_1M_adaptive_window", |b| {
        b.iter(|| {
            let cfg = config.clone().with_adaptive_window();
            Pipeline::new(cfg.into())
                .unwrap()
                .run(Source::records(out.records.clone()))
                .expect("valid config")
                .cags
                .len()
        })
    });

    g.bench_function("sharded_1M_4shards", |b| {
        b.iter(|| {
            Pipeline::new(PipelineConfig::from(config.clone()).with_mode(Mode::Sharded(4)))
                .unwrap()
                .run(Source::records(out.records.clone()))
                .expect("valid config")
                .cags
                .len()
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
