//! EXT-2 bench: correlation cost of each algorithmic ingredient
//! (segment merging, swap, noise discarding) on a noisy log.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use multitier::{ExperimentConfig, NoiseSpec};
use tracer_core::{CorrelatorConfig, EngineOptions, Nanos, Pipeline, RankerOptions, Source};

fn bench(c: &mut Criterion) {
    let mut cfg = ExperimentConfig::quick(80, 8);
    cfg.noise = NoiseSpec {
        ssh_msgs_per_sec: 60.0,
        mysql_msgs_per_sec: 300.0,
    };
    let out = multitier::run(cfg);
    let base = out.correlator_config(Nanos::from_millis(2));
    let variants: Vec<(&str, CorrelatorConfig)> = vec![
        ("full", base.clone()),
        (
            "no_swap",
            base.clone().with_ranker(RankerOptions {
                swap: false,
                ..base.ranker
            }),
        ),
        (
            // Boost capped: without merging, multi-segment receives can
            // never match, so window boosting only wastes memory.
            "no_merge",
            base.clone()
                .with_engine(EngineOptions {
                    merge_segments: false,
                    ..base.engine.clone()
                })
                .with_ranker(RankerOptions {
                    fetch_boost: 2,
                    ..base.ranker
                }),
        ),
        (
            "no_noise_discard",
            base.clone().with_ranker(RankerOptions {
                noise_discard: false,
                ..base.ranker
            }),
        ),
    ];
    let mut g = c.benchmark_group("ext2_ablation");
    g.sample_size(10);
    for (name, vcfg) in variants {
        g.bench_with_input(BenchmarkId::new("variant", name), &vcfg, |b, vc| {
            b.iter(|| {
                Pipeline::new((vc.clone()).into())
                    .unwrap()
                    .run(Source::records(out.records.clone()))
                    .expect("config")
                    .cags
                    .len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
