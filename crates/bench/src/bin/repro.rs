//! Regenerates every table and figure of the PreciseTracer evaluation
//! (§5) plus the two extension experiments from DESIGN.md and the
//! paper-scale streaming stress run.
//!
//! ```text
//! repro [--quick] [--json] [--shards N] [--experiment ID]...
//!       [all|acc|fig8|...|fig17|ext1|ext2|scale|lb|pooled|lossy|partial]...
//! ```
//!
//! `lb`, `pooled`, `lossy` and `partial` regenerate the post-paper
//! scenario families (replicated tiers behind a load balancer,
//! connection pooling with entity reuse, lossy links with
//! retransmission, and partial sniffer capture over the TCP_TRACE v2
//! `seq=` lane), reporting correlation precision/recall against ground
//! truth for the batch and sharded pipelines. `--experiment ID` is an
//! explicit alias for naming an experiment positionally.
//!
//! `--quick` shrinks the sessions (smoke mode); the default regenerates
//! at the paper's session length (2 min up-ramp, 7.5 min runtime, 1 min
//! down-ramp). `--json` additionally writes the headline numbers of the
//! instrumented experiments (`fig9`, `scale`) to `BENCH_baseline.json`
//! in the current directory — the per-commit bench baseline checked
//! into the repository (see README "Bench baselines").

use std::collections::BTreeMap;
use std::time::Instant;

use baseline::{evaluate, infer_paths, NestingConfig};
use multitier::{Fault, Mix, NoiseSpec};
use pt_bench::{experiment, header, paper_noise, row, run_and_trace, Scale};
use simnet::Dist;
use tracer_core::raw::parse_log;
use tracer_core::{
    parse_refs_parallel, BreakdownReport, Cag, Component, CorrelatorConfig, Diagnosis, DiffReport,
    EngineOptions, FilterSet, Mode, Nanos, PatternAggregator, Pipeline, PipelineConfig,
    RankerOptions, Source,
};

/// Flat metric collection for `BENCH_baseline.json`.
#[derive(Default)]
struct Baseline(Vec<(String, f64)>);

impl Baseline {
    fn rec(&mut self, key: impl Into<String>, value: f64) {
        self.0.push((key.into(), value));
    }

    /// Writes the collected metrics as a flat, sorted JSON object —
    /// trivially diffable between commits.
    fn write(&self, path: &str) {
        let mut entries = self.0.clone();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut s = String::from("{\n");
        for (i, (k, v)) in entries.iter().enumerate() {
            let val = if v.fract() == 0.0 && v.abs() < 1e15 {
                format!("{}", *v as i64)
            } else {
                format!("{v:.4}")
            };
            let comma = if i + 1 < entries.len() { "," } else { "" };
            s.push_str(&format!("  \"{k}\": {val}{comma}\n"));
        }
        s.push_str("}\n");
        match std::fs::write(path, s) {
            Ok(()) => eprintln!("wrote bench baseline to {path}"),
            Err(e) => eprintln!("cannot write {path}: {e}"),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let shards: usize = match args.iter().position(|a| a == "--shards") {
        None => 4,
        Some(i) => args
            .get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("repro: missing value for --shards");
                std::process::exit(2);
            })
            .parse()
            .unwrap_or_else(|_| {
                eprintln!("repro: bad --shards value");
                std::process::exit(2);
            }),
    };
    let scale = if quick { Scale::Quick } else { Scale::Paper };
    // `--experiment ID` is sugar for the positional id.
    let mut explicit: Vec<String> = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if a == "--experiment" {
            match args.get(i + 1) {
                Some(v) => explicit.push(v.clone()),
                None => {
                    eprintln!("repro: missing value for --experiment");
                    std::process::exit(2);
                }
            }
        }
    }
    let mut skip_next = false;
    let mut wanted: Vec<String> = args
        .into_iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if a == "--shards" || a == "--experiment" {
                skip_next = true;
                return false;
            }
            a != "--quick" && a != "--json"
        })
        .collect();
    wanted.extend(explicit);
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = [
            "acc", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
            "fig17", "ext1", "ext2", "scale", "serve", "lb", "pooled", "lossy", "partial",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    let mut base = Baseline::default();
    let t0 = Instant::now();
    for w in &wanted {
        match w.as_str() {
            "acc" => acc(scale),
            "fig8" | "fig9" | "fig10" | "fig11" => figs8_to_11(scale, &wanted, &mut base),
            "fig12" | "fig13" => figs12_13(scale),
            "fig14" => fig14(scale),
            "fig15" => fig15(scale),
            "fig16" => fig16(scale),
            "fig17" => fig17(scale),
            "ext1" => ext1(scale),
            "ext2" => ext2(scale),
            "scale" => scale_stream(&mut base, shards),
            "serve" => serve_soak(scale, &mut base),
            "lb" | "pooled" | "lossy" | "partial" => scenario(w, scale, shards, &mut base),
            other => eprintln!("unknown experiment id: {other}"),
        }
    }
    if json {
        // Regression gate against the *checked-in* baseline: a
        // sharded-speedup drop > 20% fails CI — and leaves the
        // committed file untouched, so a rerun cannot ratchet the
        // regressed number into the baseline.
        let gates = [
            check_sharded_regression(&base, "BENCH_baseline.json"),
            check_ingest_regression(&base, "BENCH_baseline.json"),
            check_binary_regression(&base, "BENCH_baseline.json"),
            check_serve_regression(&base, "BENCH_baseline.json"),
            check_spill_regression(&base, "BENCH_baseline.json"),
            check_dist_regression(&base, "BENCH_baseline.json"),
        ];
        if let Some(msg) = gates.into_iter().filter_map(Result::err).next() {
            eprintln!("BENCH REGRESSION: {msg}");
            eprintln!("baseline file left unchanged");
            eprintln!("\ntotal wall time: {:?}", t0.elapsed());
            std::process::exit(1);
        }
        base.write("BENCH_baseline.json");
    }
    eprintln!("\ntotal wall time: {:?}", t0.elapsed());
}

/// Guards sharded throughput against regressions: compares the
/// freshly measured `scale.sharded_speedup` (sharded vs batch in the
/// *same run*, so machine speed and runner noise largely cancel)
/// against the committed baseline file; errors when it regressed more
/// than 20%. Core count does not cancel, but the committed baseline
/// is recorded on a single-core container — the floor for the
/// pipeline's work-reduction win — so multi-core runners only gain
/// (reader/worker overlap) and the gate stays conservative. Missing
/// files/keys (first run, partial experiment lists) pass silently.
fn check_sharded_regression(base: &Baseline, path: &str) -> Result<(), String> {
    let Some(&(_, current)) = base.0.iter().find(|(k, _)| k == "scale.sharded_speedup") else {
        return Ok(());
    };
    let Ok(text) = std::fs::read_to_string(path) else {
        return Ok(());
    };
    let Some(committed) = text
        .lines()
        .find(|l| l.contains("\"scale.sharded_speedup\""))
        .and_then(|l| l.split(':').nth(1))
        .and_then(|v| v.trim().trim_end_matches(',').parse::<f64>().ok())
    else {
        return Ok(());
    };
    if current < committed * 0.8 {
        return Err(format!(
            "scale.sharded_speedup {current:.2}x fell more than 20% below the \
             committed baseline {committed:.2}x"
        ));
    }
    eprintln!(
        "sharded throughput gate: measured {current:.2}x batch vs committed {committed:.2}x — ok"
    );
    Ok(())
}

/// Guards the parallel ingest front-end the same way: the measured
/// ingest-vs-batch throughput ratio (same run, so machine speed
/// cancels) must stay within 20% of the committed
/// `scale.ingest_vs_batch`. Missing files/keys pass silently.
fn check_ingest_regression(base: &Baseline, path: &str) -> Result<(), String> {
    let Some(&(_, current)) = base.0.iter().find(|(k, _)| k == "scale.ingest_vs_batch") else {
        return Ok(());
    };
    let Ok(text) = std::fs::read_to_string(path) else {
        return Ok(());
    };
    let Some(committed) = text
        .lines()
        .find(|l| l.contains("\"scale.ingest_vs_batch\""))
        .and_then(|l| l.split(':').nth(1))
        .and_then(|v| v.trim().trim_end_matches(',').parse::<f64>().ok())
    else {
        return Ok(());
    };
    if current < committed * 0.8 {
        return Err(format!(
            "scale.ingest_vs_batch {current:.2}x fell more than 20% below the \
             committed baseline {committed:.2}x"
        ));
    }
    eprintln!(
        "ingest throughput gate: measured {current:.2}x batch vs committed {committed:.2}x — ok"
    );
    Ok(())
}

/// Guards the PTBIN decode path the same way: the measured
/// binary-vs-text ingest ratio (same run, same corpus, so machine
/// speed cancels) must stay within 20% of the committed
/// `scale.binary_vs_text_ingest`. Missing files/keys pass silently.
fn check_binary_regression(base: &Baseline, path: &str) -> Result<(), String> {
    let Some(&(_, current)) = base
        .0
        .iter()
        .find(|(k, _)| k == "scale.binary_vs_text_ingest")
    else {
        return Ok(());
    };
    let Ok(text) = std::fs::read_to_string(path) else {
        return Ok(());
    };
    let Some(committed) = text
        .lines()
        .find(|l| l.contains("\"scale.binary_vs_text_ingest\""))
        .and_then(|l| l.split(':').nth(1))
        .and_then(|v| v.trim().trim_end_matches(',').parse::<f64>().ok())
    else {
        return Ok(());
    };
    if current < committed * 0.8 {
        return Err(format!(
            "scale.binary_vs_text_ingest {current:.2}x fell more than 20% below \
             the committed baseline {committed:.2}x"
        ));
    }
    eprintln!("binary ingest gate: measured {current:.2}x text vs committed {committed:.2}x — ok");
    Ok(())
}

/// Guards the online daemon's recall in the fault-injected soak: the
/// freshly measured `scale.serve_recall` must stay within 20% of the
/// committed baseline. Missing files/keys pass silently.
fn check_serve_regression(base: &Baseline, path: &str) -> Result<(), String> {
    let Some(&(_, current)) = base.0.iter().find(|(k, _)| k == "scale.serve_recall") else {
        return Ok(());
    };
    let Ok(text) = std::fs::read_to_string(path) else {
        return Ok(());
    };
    let Some(committed) = text
        .lines()
        .find(|l| l.contains("\"scale.serve_recall\""))
        .and_then(|l| l.split(':').nth(1))
        .and_then(|v| v.trim().trim_end_matches(',').parse::<f64>().ok())
    else {
        return Ok(());
    };
    if current < committed * 0.8 {
        return Err(format!(
            "scale.serve_recall {current:.4} fell more than 20% below the \
             committed baseline {committed:.4}"
        ));
    }
    eprintln!("serve soak gate: measured recall {current:.4} vs committed {committed:.4} — ok");
    Ok(())
}

/// Guards the spill tier's overhead: the measured spill-vs-batch wall
/// ratio at the tightest budget (same run, same corpus, so machine
/// speed cancels) must not grow more than 20% over the committed
/// `scale.spill_vs_batch_wall`. Recall needs no gate — the scale run
/// asserts byte-identity outright. Missing files/keys pass silently.
fn check_spill_regression(base: &Baseline, path: &str) -> Result<(), String> {
    let Some(&(_, current)) = base
        .0
        .iter()
        .find(|(k, _)| k == "scale.spill_vs_batch_wall")
    else {
        return Ok(());
    };
    let Ok(text) = std::fs::read_to_string(path) else {
        return Ok(());
    };
    let Some(committed) = text
        .lines()
        .find(|l| l.contains("\"scale.spill_vs_batch_wall\""))
        .and_then(|l| l.split(':').nth(1))
        .and_then(|v| v.trim().trim_end_matches(',').parse::<f64>().ok())
    else {
        return Ok(());
    };
    if current > committed * 1.2 {
        return Err(format!(
            "scale.spill_vs_batch_wall {current:.2}x grew more than 20% over the \
             committed baseline {committed:.2}x"
        ));
    }
    eprintln!(
        "spill overhead gate: measured {current:.2}x batch vs committed {committed:.2}x — ok"
    );
    Ok(())
}

/// Guards the distributed cluster's overhead: the measured
/// distributed-vs-sharded wall ratio (same run, same corpus, so
/// machine speed cancels) must not grow more than 20% over the
/// committed `scale.dist_vs_sharded_wall`. Correctness needs no gate —
/// the scale run asserts identical CAG content outright. Missing
/// files/keys pass silently.
fn check_dist_regression(base: &Baseline, path: &str) -> Result<(), String> {
    let Some(&(_, current)) = base
        .0
        .iter()
        .find(|(k, _)| k == "scale.dist_vs_sharded_wall")
    else {
        return Ok(());
    };
    let Ok(text) = std::fs::read_to_string(path) else {
        return Ok(());
    };
    let Some(committed) = text
        .lines()
        .find(|l| l.contains("\"scale.dist_vs_sharded_wall\""))
        .and_then(|l| l.split(':').nth(1))
        .and_then(|v| v.trim().trim_end_matches(',').parse::<f64>().ok())
    else {
        return Ok(());
    };
    if current > committed * 1.2 {
        return Err(format!(
            "scale.dist_vs_sharded_wall {current:.2}x grew more than 20% over \
             the committed baseline {committed:.2}x"
        ));
    }
    eprintln!(
        "distributed overhead gate: measured {current:.2}x sharded vs committed {committed:.2}x — ok"
    );
    Ok(())
}

/// Order- and id-insensitive canonical fingerprint of a CAG set: one
/// sorted string per CAG covering every vertex field. The sharded
/// pipeline renumbers ids into canonical root order, so content
/// equality with the batch path is asserted modulo id/stream position.
fn cag_fingerprints(cags: &[Cag]) -> Vec<String> {
    let mut v: Vec<String> = cags
        .iter()
        .map(|c| {
            c.vertices
                .iter()
                .map(|x| {
                    format!(
                        "{}|{}|{}|{}|{}|{}|{:?}|{:?}|{:?};",
                        x.ty,
                        x.ts,
                        x.ts_last,
                        x.ctx,
                        x.channel,
                        x.size,
                        x.tags,
                        x.ctx_parent,
                        x.msg_parent
                    )
                })
                .collect()
        })
        .collect();
    v.sort();
    v
}

/// The paper-scale streaming stress run (ROADMAP north star): a ≥10⁶
/// record session correlated (a) in batch, (b) through the streaming
/// path under an explicit memory budget, (c) with the adaptive window,
/// (d) under a deliberately starved budget to demonstrate counted
/// eviction, and (e) through the sharded parallel pipeline, whose CAG
/// content must equal the batch path's and whose throughput must beat
/// it. Panics if accuracy degrades, the budget is exceeded, or the
/// scenario shrinks below 10⁶ records — the CI scale smoke runs
/// exactly this.
fn scale_stream(base: &mut Baseline, shards: usize) {
    println!("\n== SCALE: 10^6-record session, streaming-first pipeline ==");
    let t = Instant::now();
    let out = multitier::run(multitier::ExperimentConfig::scale());
    let sim_secs = t.elapsed().as_secs_f64();
    let records = out.records.len();
    assert!(
        records >= 1_000_000,
        "scale scenario must produce >= 10^6 records, got {records}"
    );

    // (a) Batch drain.
    let t = Instant::now();
    let (corr, acc) = out.correlate(Nanos::from_millis(10)).expect("valid config");
    let batch_secs = t.elapsed().as_secs_f64();
    assert!(acc.is_perfect(), "batch accuracy regression: {acc:?}");

    // (e, measured back-to-back with batch) The sharded parallel
    // pipeline: reader-side session routing feeding N direct-delivery
    // engine workers, canonical merge.
    let t = Instant::now();
    let sharded = Pipeline::new(
        PipelineConfig::from(out.correlator_config(Nanos::from_millis(10)))
            .with_mode(Mode::Sharded(shards)),
    )
    .expect("valid config")
    .run(Source::records(out.records.clone()))
    .expect("valid config");
    let sharded_secs = t.elapsed().as_secs_f64();
    let shacc = out.truth.evaluate(&sharded.cags);
    assert!(shacc.is_perfect(), "sharded accuracy regression: {shacc:?}");
    assert_eq!(
        sharded.cags.len(),
        corr.cags.len(),
        "sharded CAG count diverged from batch"
    );
    assert_eq!(
        cag_fingerprints(&sharded.cags),
        cag_fingerprints(&corr.cags),
        "sharded CAG content diverged from the single-threaded path"
    );
    let census = |cags: &[Cag]| {
        let agg = PatternAggregator::from_cags(cags);
        let mut p: Vec<(String, u64)> = agg
            .patterns()
            .iter()
            .map(|p| (p.key.to_string(), p.count))
            .collect();
        p.sort();
        p
    };
    assert_eq!(
        census(&sharded.cags),
        census(&corr.cags),
        "sharded pattern output diverged from the single-threaded path"
    );

    // (e'') The distributed cluster over the same corpus: router peers
    // hosting sharded workers behind the claim wire protocol, absorbed
    // by the coordinator's canonical merge. The in-process transport
    // keeps the measurement about claim encode/route/merge overhead
    // rather than fork+exec, and the gate compares the
    // distributed-vs-sharded wall ratio (same run, so machine speed
    // cancels) against the committed baseline.
    let (dist_routers, dist_wpr) = (2usize, (shards / 2).max(1));
    let t = Instant::now();
    let dist = Pipeline::new(
        PipelineConfig::from(out.correlator_config(Nanos::from_millis(10))).with_mode(
            Mode::Distributed {
                routers: dist_routers,
                workers_per_router: dist_wpr,
            },
        ),
    )
    .expect("valid config")
    .run(Source::records(out.records.clone()))
    .expect("valid config");
    let dist_secs = t.elapsed().as_secs_f64();
    let dacc = out.truth.evaluate(&dist.cags);
    assert!(
        dacc.is_perfect(),
        "distributed accuracy regression: {dacc:?}"
    );
    assert_eq!(
        cag_fingerprints(&dist.cags),
        cag_fingerprints(&corr.cags),
        "distributed CAG content diverged from the single-threaded path"
    );

    // Ingest front-end: render the same corpus to TCP_TRACE text and
    // measure the chunked parallel scanner (the `pt` file path) against
    // the sequential parse and against batch correlation throughput.
    const INGEST_THREADS: usize = 4;
    let mut text = String::with_capacity(records * 72);
    for r in &out.records {
        text.push_str(&r.to_string());
        text.push('\n');
    }
    // Sub-second parse timings are at the mercy of scheduler steal on
    // shared runners, so each path takes the best of three tries; the
    // enforcement lives in the `--json` gate, which compares the
    // machine-cancelling ingest-vs-batch ratio against the committed
    // baseline instead of panicking on one noisy sample.
    let best_of_3 = |f: &dyn Fn() -> usize| {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            let n = f();
            best = best.min(t.elapsed().as_secs_f64());
            assert_eq!(n, records, "parse lost records");
        }
        best
    };
    let ingest_seq_secs =
        best_of_3(&|| parse_log(&text).expect("rendered corpus must parse").len());
    let ingest_par_secs = best_of_3(&|| {
        parse_refs_parallel(&text, INGEST_THREADS)
            .expect("rendered corpus must parse")
            .len()
    });
    // The SWAR scanner on one thread: pure kernel speed, no thread
    // fan-out — the floor the chunked scanner builds on.
    let swar_seq_secs = best_of_3(&|| {
        parse_refs_parallel(&text, 1)
            .expect("rendered corpus must parse")
            .len()
    });
    // PTBIN: the same corpus in the fixed-width binary format. Decode
    // does no text scanning at all, so its rate is the format's
    // headline number (gated as binary-vs-text in the --json run).
    let bin = tracer_core::binfmt::encode_text(&text, INGEST_THREADS)
        .expect("rendered corpus must encode");
    let text_bytes = text.len();
    let binary_enc_secs = best_of_3(&|| {
        let b = tracer_core::binfmt::encode_text(&text, INGEST_THREADS)
            .expect("rendered corpus must encode");
        tracer_core::binfmt::Reader::new(&b)
            .expect("fresh encoding must validate")
            .len()
    });
    let binary_dec_secs = best_of_3(&|| {
        tracer_core::binfmt::decode_refs_parallel(&bin, INGEST_THREADS)
            .expect("fresh encoding must decode")
            .len()
    });
    drop(text);
    let ingest_rps = records as f64 / ingest_par_secs.max(1e-9);
    let binary_rps = records as f64 / binary_dec_secs.max(1e-9);
    let batch_rps = records as f64 / batch_secs.max(1e-9);
    // The scanner must never be the pipeline's bottleneck: the target
    // is >= 5x the batch correlation rate (trivially cleared on real
    // multi-core hardware; close on a contended one-core container).
    if ingest_rps < 5.0 * batch_rps {
        eprintln!(
            "WARNING: parallel ingest at {ingest_rps:.0} rec/s fell below 5x the \
             batch correlation rate {batch_rps:.0} rec/s on this run"
        );
    }

    // (b) Streaming under an 8 MiB budget (well above the ~2 MiB
    // natural working set: the budget must bound, not distort).
    const BUDGET: usize = 8 << 20;
    let t = Instant::now();
    let mut sc = Pipeline::new(
        PipelineConfig::from(
            out.correlator_config(Nanos::from_millis(10))
                .with_memory_budget(BUDGET),
        )
        .with_mode(Mode::Streaming),
    )
    .expect("valid config")
    .session()
    .expect("valid config");
    let mut cags = Vec::new();
    for (i, rec) in out.records.iter().cloned().enumerate() {
        sc.push(rec).expect("not finished");
        if i % 4096 == 0 {
            cags.extend(sc.poll().expect("not finished"));
        }
    }
    let fin = sc.finish().expect("single finish");
    cags.extend(fin.cags);
    let stream_secs = t.elapsed().as_secs_f64();
    assert!(
        fin.metrics.peak_bytes <= BUDGET,
        "streaming peak {} bytes exceeds the {BUDGET} byte budget",
        fin.metrics.peak_bytes
    );
    assert_eq!(fin.metrics.engine.budget_evicted_cags, 0);
    let sacc = out.truth.evaluate(&cags);
    assert!(sacc.is_perfect(), "streaming accuracy regression: {sacc:?}");

    // (c) Adaptive window instead of the hand-tuned 10 ms knob.
    let t = Instant::now();
    let (acorr, aacc) = out
        .correlate_with(
            out.correlator_config(Nanos::from_millis(10))
                .with_adaptive_window(),
        )
        .expect("valid config");
    let adaptive_secs = t.elapsed().as_secs_f64();
    assert!(aacc.is_perfect(), "adaptive accuracy regression: {aacc:?}");
    assert!(acorr.metrics.ranker.window_updates > 0);

    // (d) Starved budget under the legacy shed policy: evictions must
    // be counted, never silent, and the resident set must still respect
    // the budget at sampling points.
    let (tight, _) = out
        .correlate_with(
            out.correlator_config(Nanos::from_millis(10))
                .with_memory_budget(1 << 20)
                .with_shed_on_budget(),
        )
        .expect("valid config");
    assert!(
        tight.metrics.engine.budget_evicted_cags > 0,
        "a 1 MiB shed budget must force evictions"
    );
    // Even starved below the working set, the resident state stays near
    // the budget: sheddable state is evicted and the ranker's buffer
    // cap backstops stuck-state window boosts. What remains is the
    // unsheddable floor (unsealed finished paths + live contexts).
    assert!(
        tight.metrics.peak_bytes <= 2 << 20,
        "starved-budget peak {} bytes should stay near the 1 MiB budget",
        tight.metrics.peak_bytes
    );

    // (f) The spill tier (the budget default): shrink the budget and
    // walk the budget-vs-recall-vs-latency curve. Unlike shedding,
    // spilling only changes residency — every step must stay
    // byte-identical to the unbounded batch run (recall 1.00), and the
    // tightest step must have actually paged state out and back.
    let batch_prints = cag_fingerprints(&corr.cags);
    let mut spill_curve = Vec::new();
    for budget in [8 << 20, 4 << 20, 2 << 20, 1 << 20usize] {
        let t = Instant::now();
        let (sp, spacc) = out
            .correlate_with(
                out.correlator_config(Nanos::from_millis(10))
                    .with_memory_budget(budget),
            )
            .expect("valid config");
        let secs = t.elapsed().as_secs_f64();
        assert!(
            spacc.is_perfect(),
            "spill at {budget} B budget lost recall: {spacc:?}"
        );
        assert_eq!(
            cag_fingerprints(&sp.cags),
            batch_prints,
            "spill at {budget} B budget diverged from the unbounded batch run"
        );
        assert_eq!(sp.metrics.engine.budget_evicted_cags, 0);
        let spilled = sp.metrics.engine.spilled_cags
            + sp.metrics.engine.spilled_orphans
            + sp.metrics.spilled_dedup_entries;
        let faults = sp.metrics.engine.spill_faults + sp.metrics.spill_dedup_faults;
        spill_curve.push((budget, secs, spacc.recall(), spilled, faults, sp.metrics));
    }
    let (spill_budget, spill_secs, spill_recall, spill_spilled, spill_faults, spill_metrics) =
        spill_curve.pop().expect("curve has steps");
    assert!(
        spill_faults > 0,
        "a {spill_budget} B budget must page state out and fault it back"
    );

    // (g) Adaptive window under a budget: the density clamp must keep
    // the window from settling far above the hand-tuned knob when the
    // buffer working set would not fit, and accuracy per shrink step is
    // recorded so a clamp regression is visible in the bench JSON.
    let mut adaptive_steps = Vec::new();
    for budget in [4 << 20, 1 << 20, 256 << 10usize] {
        let (ac, aa) = out
            .correlate_with(
                out.correlator_config(Nanos::from_millis(10))
                    .with_adaptive_window()
                    .with_memory_budget(budget),
            )
            .expect("valid config");
        adaptive_steps.push((
            budget,
            aa.recall(),
            ac.metrics.ranker.window_clamps,
            ac.metrics.ranker.adaptive_window_ns,
        ));
    }
    let free_window_ns = acorr.metrics.ranker.adaptive_window_ns;
    let (_, _, tightest_clamps, tightest_window_ns) =
        *adaptive_steps.last().expect("steps recorded");
    assert!(tightest_clamps > 0, "the tightest budget must clamp");
    // The debt this clamp closes: unbudgeted, the noisy scale scenario
    // drives the adaptive window orders of magnitude past the
    // hand-tuned 10 ms knob. Budgeted, it must settle within 5x of it.
    assert!(
        tightest_window_ns <= 5 * Nanos::from_millis(10).as_nanos(),
        "budget-clamped adaptive window {tightest_window_ns} ns settled more \
         than 5x above the hand-tuned 10 ms window (unbudgeted: {free_window_ns} ns)"
    );

    println!(
        "{}",
        header(&["mode", "records", "corr_s", "rec/s", "peak_MB", "evicted"])
    );
    let mb = |b: usize| b as f64 / 1e6;
    let sharded_label = format!("sharded_x{shards}");
    for (mode, secs, peak, evicted) in [
        ("batch", batch_secs, corr.metrics.peak_bytes, 0u64),
        ("stream_8MiB", stream_secs, fin.metrics.peak_bytes, 0),
        ("adaptive", adaptive_secs, acorr.metrics.peak_bytes, 0),
        (
            sharded_label.as_str(),
            sharded_secs,
            sharded.metrics.peak_bytes,
            0,
        ),
        (
            "shed_1MiB",
            f64::NAN,
            tight.metrics.peak_bytes,
            tight.metrics.engine.budget_evicted_cags,
        ),
        ("spill_1MiB", spill_secs, spill_metrics.peak_bytes, 0),
    ] {
        println!(
            "{}",
            row(&[
                mode.to_string(),
                records.to_string(),
                if secs.is_nan() {
                    "-".into()
                } else {
                    format!("{secs:.3}")
                },
                if secs.is_nan() {
                    "-".into()
                } else {
                    format!("{:.0}", records as f64 / secs)
                },
                format!("{:.2}", mb(peak)),
                evicted.to_string(),
            ])
        );
    }
    println!(
        "sim {sim_secs:.2}s, {} requests, {} swap crossings, {} adaptive window updates",
        out.service.completed, corr.metrics.ranker.swaps, acorr.metrics.ranker.window_updates,
    );
    println!(
        "sharded x{shards}: {:.2}x batch throughput ({} reader noise discards, identical CAG/pattern output)",
        batch_secs / sharded_secs.max(1e-9),
        sharded.metrics.ranker.noise_discards,
    );
    println!(
        "distributed {dist_routers}x{dist_wpr}: {:.2}x sharded wall \
         ({:.0} rec/s through the claim wire, identical CAG output)",
        dist_secs / sharded_secs.max(1e-9),
        records as f64 / dist_secs.max(1e-9),
    );
    println!(
        "ingest x{INGEST_THREADS}: {ingest_rps:.0} rec/s parallel scan \
         ({:.0} rec/s sequential, {:.1}x the batch correlation rate)",
        records as f64 / ingest_seq_secs.max(1e-9),
        ingest_rps / batch_rps,
    );
    println!(
        "binary x{INGEST_THREADS}: {binary_rps:.0} rec/s PTBIN decode, \
         {:.1}x the parallel text scan ({:.1} B/record vs {:.1} text, \
         encode {:.0} rec/s)",
        binary_rps / ingest_rps.max(1e-9),
        bin.len() as f64 / records as f64,
        text_bytes as f64 / records as f64,
        records as f64 / binary_enc_secs.max(1e-9),
    );

    println!(
        "{}",
        header(&["spill_budget", "corr_s", "recall", "spilled", "faults"])
    );
    for (budget, secs, recall, spilled, faults, _) in &spill_curve {
        println!(
            "{}",
            row(&[
                format!("{:.0}MiB", *budget as f64 / (1 << 20) as f64),
                format!("{secs:.3}"),
                format!("{recall:.2}"),
                spilled.to_string(),
                faults.to_string(),
            ])
        );
    }
    println!(
        "{}",
        row(&[
            format!("{:.0}MiB", spill_budget as f64 / (1 << 20) as f64),
            format!("{spill_secs:.3}"),
            format!("{spill_recall:.2}"),
            spill_spilled.to_string(),
            spill_faults.to_string(),
        ])
    );
    println!(
        "spill x{:.2} batch wall at the {:.0} MiB floor — identical output, {} pages written / {} read ({} absorbed in flight)",
        spill_secs / batch_secs.max(1e-9),
        spill_budget as f64 / (1 << 20) as f64,
        spill_metrics.spill_pages_written,
        spill_metrics.spill_pages_read,
        spill_metrics.spill_queue_hits,
    );
    for (budget, recall, clamps, window_ns) in &adaptive_steps {
        println!(
            "adaptive budget {:>4} KiB: recall {recall:.4}, {clamps} window clamps, settled at {:.2} ms \
             (unbudgeted {:.2} ms)",
            budget >> 10,
            *window_ns as f64 / 1e6,
            free_window_ns as f64 / 1e6,
        );
    }

    base.rec("scale.records", records as f64);
    base.rec("scale.requests", out.service.completed as f64);
    base.rec("scale.sim_secs", sim_secs);
    base.rec("scale.batch_corr_secs", batch_secs);
    base.rec(
        "scale.batch_records_per_sec",
        records as f64 / batch_secs.max(1e-9),
    );
    base.rec(
        "scale.batch_swap_crossings",
        corr.metrics.ranker.swaps as f64,
    );
    base.rec("scale.stream_corr_secs", stream_secs);
    base.rec("scale.stream_peak_bytes", fin.metrics.peak_bytes as f64);
    base.rec("scale.stream_budget_bytes", BUDGET as f64);
    base.rec("scale.adaptive_corr_secs", adaptive_secs);
    base.rec(
        "scale.adaptive_window_updates",
        acorr.metrics.ranker.window_updates as f64,
    );
    base.rec(
        "scale.tight_budget_evicted_cags",
        tight.metrics.engine.budget_evicted_cags as f64,
    );
    base.rec("scale.spill_budget_bytes", spill_budget as f64);
    base.rec("scale.spill_corr_secs", spill_secs);
    base.rec("scale.spill_recall", spill_recall);
    base.rec("scale.spill_spilled", spill_spilled as f64);
    base.rec("scale.spill_faults", spill_faults as f64);
    base.rec(
        "scale.spill_pages_written",
        spill_metrics.spill_pages_written as f64,
    );
    base.rec(
        "scale.spill_vs_batch_wall",
        spill_secs / batch_secs.max(1e-9),
    );
    for (budget, recall, clamps, window_ns) in &adaptive_steps {
        let kib = budget >> 10;
        base.rec(format!("scale.adaptive_budget_recall_{kib}k"), *recall);
        base.rec(
            format!("scale.adaptive_budget_clamps_{kib}k"),
            *clamps as f64,
        );
        base.rec(
            format!("scale.adaptive_budget_window_ns_{kib}k"),
            *window_ns as f64,
        );
    }
    base.rec("scale.adaptive_free_window_ns", free_window_ns as f64);
    base.rec("scale.sharded_shards", shards as f64);
    base.rec("scale.sharded_corr_secs", sharded_secs);
    base.rec(
        "scale.sharded_records_per_sec",
        records as f64 / sharded_secs.max(1e-9),
    );
    base.rec("scale.sharded_speedup", batch_secs / sharded_secs.max(1e-9));
    base.rec("scale.dist_routers", dist_routers as f64);
    base.rec("scale.dist_workers_per_router", dist_wpr as f64);
    base.rec("scale.dist_corr_secs", dist_secs);
    base.rec(
        "scale.dist_records_per_sec",
        records as f64 / dist_secs.max(1e-9),
    );
    base.rec(
        "scale.dist_vs_sharded_wall",
        dist_secs / sharded_secs.max(1e-9),
    );
    base.rec("scale.ingest_threads", INGEST_THREADS as f64);
    base.rec("scale.ingest_records_per_sec", ingest_rps);
    base.rec(
        "scale.ingest_seq_records_per_sec",
        records as f64 / ingest_seq_secs.max(1e-9),
    );
    base.rec("scale.ingest_vs_batch", ingest_rps / batch_rps);
    base.rec(
        "scale.swar_scan_records_per_sec",
        records as f64 / swar_seq_secs.max(1e-9),
    );
    base.rec("scale.binary_ingest_records_per_sec", binary_rps);
    base.rec(
        "scale.binary_encode_records_per_sec",
        records as f64 / binary_enc_secs.max(1e-9),
    );
    base.rec(
        "scale.binary_bytes_per_record",
        bin.len() as f64 / records as f64,
    );
    base.rec(
        "scale.binary_vs_text_ingest",
        binary_rps / ingest_rps.max(1e-9),
    );
}

/// The post-paper scenario families (replicated tiers behind a load
/// balancer, connection pooling with entity reuse, lossy links with
/// retransmission, partial sniffer capture over TCP_TRACE v2):
/// simulates the scenario, correlates through the batch and sharded
/// pipelines, reports precision/recall against ground truth, and
/// asserts the tier-1 floors (≥ 0.99; ≥ 0.95 at 1% loss and at 2%
/// capture drop) so CI smoke runs fail on any regression. Throughput
/// lands under the `scale.*` baseline keys (informational; the
/// regression gate stays on `scale.sharded_speedup` alone).
/// Tag-free variant of [`cag_fingerprints`]: the live daemon re-parses
/// records from disk, which strips the in-memory ground-truth tags, so
/// live output is compared to the offline reference on every vertex
/// field except `tags`.
fn cag_shape_fingerprints(cags: &[Cag]) -> Vec<String> {
    let mut v: Vec<String> = cags
        .iter()
        .map(|c| {
            c.vertices
                .iter()
                .map(|x| {
                    format!(
                        "{}|{}|{}|{}|{}|{}|{:?}|{:?};",
                        x.ty, x.ts, x.ts_last, x.ctx, x.channel, x.size, x.ctx_parent, x.msg_parent
                    )
                })
                .collect()
        })
        .collect();
    v.sort();
    v
}

/// The fault-injected online soak: a fixed-seed corpus is split into
/// per-node source files replayed at steady wall pace by fault-injecting
/// writers (a write stall, a source restart and a torn tail — three
/// distinct injections), while `tracer_core::serve` tails them live.
/// Gates: bounded memory (flat RSS, capped correlation state), p99 seal
/// lag under a bound, zero sheds under the lossless policy, and recall
/// against ground truth ≥ 0.95 (bridged through an offline reference on
/// the same corpus whose accuracy is asserted against truth directly).
fn serve_soak(scale: Scale, base: &mut Baseline) {
    use multitier::{write_paced, FaultPlan, SourceFault};
    use std::sync::atomic::AtomicBool;
    use tracer_core::serve::{ServeConfig, ServeKpi, ServeSink, Server, SourceSpec};

    let (clients, secs, wall_secs) = match scale {
        Scale::Quick => (10, 8, 3.0),
        Scale::Paper => (40, 20, 8.0),
    };
    let mut cfg = multitier::ExperimentConfig::quick(clients, secs);
    cfg.seed = 42;
    println!("\n== serve: fault-injected online soak ==");
    let out = multitier::run(cfg);
    let window = tracer_core::Nanos::from_millis(500);

    // Offline reference on the same corpus; its accuracy against the
    // ground truth anchors the live run's recall gate.
    let (reference, acc) = out.correlate(window).expect("valid config");
    assert!(
        acc.precision() >= 0.97 && acc.recall() >= 0.97,
        "soak reference off truth: precision {:.4} recall {:.4}",
        acc.precision(),
        acc.recall()
    );

    // Split the capture into per-node logs, the shape real probes emit.
    let mut by_host: BTreeMap<&str, Vec<(u64, String)>> = BTreeMap::new();
    for r in &out.records {
        by_host
            .entry(&r.hostname)
            .or_default()
            .push((r.ts.as_nanos(), r.to_string()));
    }
    let epoch = out
        .records
        .iter()
        .map(|r| r.ts.as_nanos())
        .min()
        .unwrap_or(0);
    let span = out
        .records
        .iter()
        .map(|r| r.ts.as_nanos())
        .max()
        .unwrap_or(0)
        .saturating_sub(epoch);
    let speedup = (span as f64 / (wall_secs * 1e9)).max(1.0);

    let dir = std::env::temp_dir().join(format!("pt-serve-soak-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("soak temp dir");
    // One distinct fault per source: stall+resume, restart, torn tail.
    let plans = [
        FaultPlan {
            faults: vec![SourceFault::Stall {
                at: 0.35,
                millis: 300,
            }],
        },
        FaultPlan {
            faults: vec![SourceFault::Restart {
                at: 0.55,
                settle_millis: 80,
            }],
        },
        FaultPlan {
            faults: vec![SourceFault::TornTail {
                at: 0.5,
                millis: 200,
            }],
        },
    ];
    type SoakSource<'a> = (std::path::PathBuf, &'a Vec<(u64, String)>, &'a FaultPlan);
    let sources: Vec<SoakSource> = by_host
        .values()
        .enumerate()
        .map(|(i, recs)| {
            (
                dir.join(format!("node{i}.log")),
                recs,
                &plans[i % plans.len()],
            )
        })
        .collect();

    struct SoakSink {
        sealed: Vec<Cag>,
        kpis: Vec<ServeKpi>,
    }
    impl ServeSink for SoakSink {
        fn on_sealed(&mut self, cags: &[Cag]) {
            self.sealed.extend_from_slice(cags);
        }
        fn on_kpi(&mut self, kpi: &ServeKpi) {
            self.kpis.push(kpi.clone());
        }
    }

    let mut serve_cfg = ServeConfig::new(
        PipelineConfig::from(out.correlator_config(window)).with_mode(Mode::Streaming),
        sources
            .iter()
            .map(|(p, _, _)| SourceSpec::auto(p.clone()))
            .collect(),
    );
    serve_cfg.poll_interval = std::time::Duration::from_millis(5);
    serve_cfg.idle_end = Some(std::time::Duration::from_millis(900));
    serve_cfg.kpi_every_records = 250;
    let server = Server::new(serve_cfg).expect("valid serve config");

    let mut sink = SoakSink {
        sealed: Vec::new(),
        kpis: Vec::new(),
    };
    let stop = AtomicBool::new(false);
    let t = Instant::now();
    let (report, fault_logs) = std::thread::scope(|scope| {
        let writers: Vec<_> = sources
            .iter()
            .map(|(path, recs, plan)| {
                scope.spawn(move || write_paced(path, recs, epoch, speedup, plan))
            })
            .collect();
        let report = server.run(&mut sink, &stop).expect("soak serve run");
        let logs: Vec<_> = writers
            .into_iter()
            .map(|w| w.join().expect("writer thread").expect("writer io"))
            .collect();
        (report, logs)
    });
    let soak_secs = t.elapsed().as_secs_f64();
    std::fs::remove_dir_all(&dir).ok();

    // ≥3 distinct injections actually happened, and the daemon saw them.
    let stalls: u64 = fault_logs.iter().map(|l| l.stalls).sum();
    let restarts: u64 = fault_logs.iter().map(|l| l.restarts).sum();
    let torn: u64 = fault_logs.iter().map(|l| l.torn_tails).sum();
    assert!(
        stalls >= 1 && restarts >= 1 && torn >= 1,
        "soak must inject stall+restart+torn-tail, got {stalls}/{restarts}/{torn}"
    );
    let stats = report.stats_line();
    assert!(
        report.sources.iter().map(|s| s.restarts).sum::<u64>() >= 1,
        "daemon missed the source restart: {stats}"
    );
    assert!(
        report.sources.iter().map(|s| s.torn_retries).sum::<u64>() >= 1,
        "daemon never carried a torn tail: {stats}"
    );
    // Lossless policy, lossless faults: zero sheds, zero malformed,
    // every record ingested exactly once.
    assert_eq!(report.shed_records(), 0, "unexpected sheds: {stats}");
    assert_eq!(
        report.records_in,
        out.records.len() as u64,
        "record loss through the fault schedule: {stats}"
    );

    // Bounded state: correlation state capped, RSS flat across the run.
    assert!(
        report.peak_state_bytes < 32 << 20,
        "correlation state not bounded: {stats}"
    );
    if let (Some(first), Some(last)) = (
        sink.kpis.iter().find_map(|k| k.rss_bytes),
        sink.kpis.iter().rev().find_map(|k| k.rss_bytes),
    ) {
        assert!(
            last.saturating_sub(first) < 64 << 20,
            "RSS grew {}B across the soak: {stats}",
            last.saturating_sub(first)
        );
    }
    let lag_bound = (report.records_in / 2).max(500);
    assert!(
        report.p99_seal_lag <= lag_bound,
        "p99 seal lag {} over bound {lag_bound}: {stats}",
        report.p99_seal_lag
    );

    // Recall vs ground truth, bridged through the asserted reference:
    // how many reference paths the live run reproduced shape-for-shape.
    let mut live = sink.sealed.clone();
    live.extend(report.output.cags.iter().cloned());
    let live_fps = cag_shape_fingerprints(&live);
    let ref_fps = cag_shape_fingerprints(&reference.cags);
    let mut matched = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < live_fps.len() && j < ref_fps.len() {
        match live_fps[i].cmp(&ref_fps[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                matched += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let recall = matched as f64 / ref_fps.len().max(1) as f64;
    assert!(
        recall >= 0.95,
        "soak recall {recall:.4} below 0.95 ({matched}/{} reference paths): {stats}",
        ref_fps.len()
    );

    println!(
        "{}",
        header(&["records", "sources", "faults", "recall", "p99_lag", "shed", "wall_s"])
    );
    println!(
        "{}",
        row(&[
            report.records_in.to_string(),
            report.sources.len().to_string(),
            (stalls + restarts + torn).to_string(),
            format!("{recall:.4}"),
            report.p99_seal_lag.to_string(),
            report.shed_records().to_string(),
            format!("{soak_secs:.2}"),
        ])
    );
    println!("{stats}");
    base.rec("scale.serve_records", report.records_in as f64);
    base.rec("scale.serve_recall", recall);
    base.rec("scale.serve_p99_seal_lag", report.p99_seal_lag as f64);
    base.rec(
        "scale.serve_peak_state_bytes",
        report.peak_state_bytes as f64,
    );
    base.rec("scale.serve_faults", (stalls + restarts + torn) as f64);
}

fn scenario(id: &str, scale: Scale, shards: usize, base: &mut Baseline) {
    let (mut cfg, window, floor) = match id {
        "lb" => (
            multitier::ExperimentConfig::lb(),
            tracer_core::Nanos::from_millis(10),
            0.99,
        ),
        "pooled" => (
            multitier::ExperimentConfig::pooled(),
            tracer_core::Nanos::from_millis(10),
            0.99,
        ),
        "partial" => (
            multitier::ExperimentConfig::partial(),
            tracer_core::Nanos::from_millis(10),
            0.95,
        ),
        _ => (
            multitier::ExperimentConfig::lossy(),
            tracer_core::Nanos::from_millis(100),
            0.95,
        ),
    };
    if scale == Scale::Paper {
        cfg.clients = 200;
        cfg.phases = multitier::Phases::quick(60);
    }
    println!("\n== scenario {id}: precision/recall vs ground truth ==");
    let t = Instant::now();
    let out = multitier::run(cfg);
    let sim_secs = t.elapsed().as_secs_f64();
    let records = out.records.len();

    let t = Instant::now();
    let (corr, acc) = out.correlate(window).expect("valid config");
    let batch_secs = t.elapsed().as_secs_f64();
    assert!(
        acc.precision() >= floor && acc.recall() >= floor,
        "{id}: batch precision {:.4} / recall {:.4} below {floor}: {acc:?}",
        acc.precision(),
        acc.recall()
    );

    let t = Instant::now();
    let sharded = Pipeline::new(
        PipelineConfig::from(out.correlator_config(window)).with_mode(Mode::Sharded(shards)),
    )
    .expect("valid config")
    .run(Source::records(out.records.clone()))
    .expect("valid config");
    let sharded_secs = t.elapsed().as_secs_f64();
    let shacc = out.truth.evaluate(&sharded.cags);
    assert!(
        shacc.precision() >= floor && shacc.recall() >= floor,
        "{id}: sharded precision {:.4} / recall {:.4} below {floor}: {shacc:?}",
        shacc.precision(),
        shacc.recall()
    );
    assert_eq!(
        cag_fingerprints(&sharded.cags),
        cag_fingerprints(&corr.cags),
        "{id}: sharded CAG content diverged from batch"
    );

    println!(
        "{}",
        header(&[
            "mode",
            "records",
            "corr_s",
            "rec/s",
            "precision",
            "recall",
            "retrans"
        ])
    );
    for (mode, secs, a, retrans) in [
        ("batch", batch_secs, &acc, corr.metrics.retrans_dropped),
        (
            "sharded",
            sharded_secs,
            &shacc,
            sharded.metrics.retrans_dropped,
        ),
    ] {
        println!(
            "{}",
            row(&[
                mode.to_string(),
                records.to_string(),
                format!("{secs:.3}"),
                format!("{:.0}", records as f64 / secs.max(1e-9)),
                format!("{:.4}", a.precision()),
                format!("{:.4}", a.recall()),
                retrans.to_string(),
            ])
        );
    }
    println!(
        "sim {sim_secs:.2}s, {} requests, {} noise records, {} capture-dropped records",
        out.service.completed,
        out.truth.noise_records(),
        out.capture_dropped,
    );
    base.rec(format!("scale.{id}_records"), records as f64);
    base.rec(
        format!("scale.{id}_records_per_sec"),
        records as f64 / batch_secs.max(1e-9),
    );
    base.rec(
        format!("scale.{id}_sharded_records_per_sec"),
        records as f64 / sharded_secs.max(1e-9),
    );
    base.rec(format!("scale.{id}_precision"), acc.precision());
    base.rec(format!("scale.{id}_recall"), acc.recall());
}

/// Deduplicates the fig8-11 family (they share the same runs) so asking
/// for several of them only simulates once.
fn figs8_to_11(scale: Scale, wanted: &[String], base: &mut Baseline) {
    use std::sync::OnceLock;
    static DONE: OnceLock<()> = OnceLock::new();
    if DONE.set(()).is_err() {
        return;
    }
    let want = |id: &str| wanted.iter().any(|w| w == id || w == "all");
    // One session per client count, reused by Figs. 8, 9, 10 and 11.
    let mut fig8_rows = Vec::new();
    let mut fig9_rows = Vec::new();
    let mut fig10: BTreeMap<usize, Vec<(u64, f64)>> = BTreeMap::new();
    let mut fig11: BTreeMap<usize, Vec<(u64, f64)>> = BTreeMap::new();
    let windows_ms: [u64; 6] = [1, 10, 100, 1_000, 10_000, 100_000];
    for clients in scale.client_sweep() {
        let cfg = experiment(scale, clients);
        let rt = run_and_trace(cfg, Nanos::from_millis(10));
        assert!(
            rt.accuracy.is_perfect(),
            "accuracy regression: {:?}",
            rt.accuracy
        );
        fig8_rows.push((clients, rt.out.service.completed));
        fig9_rows.push((rt.out.service.completed, rt.correlation_time.as_secs_f64()));
        base.rec(
            format!("fig9.corr_secs.c{clients}"),
            rt.correlation_time.as_secs_f64(),
        );
        if (want("fig10") || want("fig11")) && [200, 500, 800].contains(&clients) {
            for &w in &windows_ms {
                let t = Instant::now();
                let (corr, acc) = rt.out.correlate(Nanos::from_millis(w)).expect("config");
                let secs = t.elapsed().as_secs_f64();
                assert!(acc.is_perfect(), "window {w}ms: {acc:?}");
                fig10.entry(clients).or_default().push((w, secs));
                fig11
                    .entry(clients)
                    .or_default()
                    .push((w, corr.metrics.peak_bytes as f64 / 1e6));
            }
        }
    }
    if want("fig8") {
        println!("\n== Fig. 8: serviced requests vs concurrent clients (Browse_Only) ==");
        println!("{}", header(&["clients", "requests"]));
        for (c, n) in &fig8_rows {
            println!("{}", row(&[c.to_string(), n.to_string()]));
        }
    }
    if want("fig9") {
        println!("\n== Fig. 9: correlation time vs serviced requests (window 10ms) ==");
        println!("{}", header(&["requests", "corr_time_s"]));
        for (n, s) in &fig9_rows {
            println!("{}", row(&[n.to_string(), format!("{s:.3}")]));
        }
    }
    if want("fig10") {
        println!("\n== Fig. 10: correlation time vs sliding window ==");
        let mut cols = vec!["window_ms".to_string()];
        cols.extend(fig10.keys().map(|c| format!("{c}_clients_s")));
        println!(
            "{}",
            header(&cols.iter().map(|s| s.as_str()).collect::<Vec<_>>())
        );
        for (i, &w) in windows_ms.iter().enumerate() {
            let mut cells = vec![w.to_string()];
            for rows in fig10.values() {
                cells.push(format!("{:.3}", rows[i].1));
            }
            println!("{}", row(&cells));
        }
    }
    if want("fig11") {
        println!("\n== Fig. 11: correlator peak memory vs sliding window ==");
        let mut cols = vec!["window_ms".to_string()];
        cols.extend(fig11.keys().map(|c| format!("{c}_clients_MB")));
        println!(
            "{}",
            header(&cols.iter().map(|s| s.as_str()).collect::<Vec<_>>())
        );
        for (i, &w) in windows_ms.iter().enumerate() {
            let mut cells = vec![w.to_string()];
            for rows in fig11.values() {
                cells.push(format!("{:.2}", rows[i].1));
            }
            println!("{}", row(&cells));
        }
    }
}

/// §5.2: path accuracy across clients, windows, skews, and with noise.
fn acc(scale: Scale) {
    println!("\n== §5.2: path accuracy (expect 100%, no FP, no FN) ==");
    println!(
        "{}",
        header(&["clients", "window", "skew_ms", "noise", "requests", "accuracy"])
    );
    let clients_list: &[usize] = if scale == Scale::Paper {
        &[100, 500, 1000]
    } else {
        &[50, 200]
    };
    for &clients in clients_list {
        for (window, skew_ms, noise) in [
            (Nanos::from_millis(1), 1i64, false),
            (Nanos::from_millis(10), 100, false),
            (Nanos::from_secs(10), 500, false),
            (Nanos::from_millis(2), 10, true),
        ] {
            let mut cfg = experiment(scale, clients);
            cfg.spec = cfg.spec.with_skew_ms(skew_ms);
            if noise {
                cfg.noise = paper_noise(scale);
            }
            let rt = run_and_trace(cfg, window);
            println!(
                "{}",
                row(&[
                    clients.to_string(),
                    format!("{}", window),
                    skew_ms.to_string(),
                    noise.to_string(),
                    rt.accuracy.logged_requests.to_string(),
                    format!("{:.2}%", rt.accuracy.accuracy() * 100.0),
                ])
            );
            assert!(rt.accuracy.is_perfect(), "{:?}", rt.accuracy);
        }
    }
}

/// Figs. 12/13: probe overhead on throughput and response time.
fn figs12_13(scale: Scale) {
    use std::sync::OnceLock;
    static DONE: OnceLock<()> = OnceLock::new();
    if DONE.set(()).is_err() {
        return;
    }
    println!("\n== Figs. 12/13: RUBiS throughput & response time, probe enabled vs disabled ==");
    println!(
        "{}",
        header(&[
            "clients",
            "tp_off",
            "tp_on",
            "tp_ovh%",
            "rt_off_ms",
            "rt_on_ms",
            "rt_ovh%"
        ])
    );
    let mut max_tp_ovh: f64 = 0.0;
    let mut max_rt_ovh: f64 = 0.0;
    for clients in scale.client_sweep() {
        let run = |tracing: bool| {
            let mut cfg = experiment(scale, clients);
            cfg.spec = cfg.spec.with_tracing(tracing);
            multitier::run(cfg)
        };
        let off = run(false);
        let on = run(true);
        let (tp_off, tp_on) = (off.service.throughput(), on.service.throughput());
        let (rt_off, rt_on) = (
            off.service.rt_mean().as_nanos() as f64 / 1e6,
            on.service.rt_mean().as_nanos() as f64 / 1e6,
        );
        let tp_ovh = (tp_off - tp_on) / tp_off.max(1e-9) * 100.0;
        let rt_ovh = (rt_on - rt_off) / rt_off.max(1e-9) * 100.0;
        max_tp_ovh = max_tp_ovh.max(tp_ovh);
        max_rt_ovh = max_rt_ovh.max(rt_ovh);
        println!(
            "{}",
            row(&[
                clients.to_string(),
                format!("{tp_off:.1}"),
                format!("{tp_on:.1}"),
                format!("{tp_ovh:.1}"),
                format!("{rt_off:.0}"),
                format!("{rt_on:.0}"),
                format!("{rt_ovh:.1}"),
            ])
        );
    }
    println!("max throughput overhead: {max_tp_ovh:.1}% (paper: 3.7%)");
    println!("max response-time overhead: {max_rt_ovh:.1}% (paper: <30%)");
}

/// Fig. 14: correlation time with and without ~200K noise activities.
fn fig14(scale: Scale) {
    println!("\n== Fig. 14: noise tolerance (window 2ms) ==");
    println!(
        "{}",
        header(&["clients", "no_noise_s", "noise_s", "noise_records"])
    );
    let clients_list: &[usize] = if scale == Scale::Paper {
        &[100, 300, 500, 700, 900]
    } else {
        &[100, 300]
    };
    for &clients in clients_list {
        let base = {
            let cfg = experiment(scale, clients);
            run_and_trace(cfg, Nanos::from_millis(2))
        };
        let noisy = {
            let mut cfg = experiment(scale, clients);
            cfg.noise = paper_noise(scale);
            run_and_trace(cfg, Nanos::from_millis(2))
        };
        assert!(base.accuracy.is_perfect() && noisy.accuracy.is_perfect());
        println!(
            "{}",
            row(&[
                clients.to_string(),
                format!("{:.3}", base.correlation_time.as_secs_f64()),
                format!("{:.3}", noisy.correlation_time.as_secs_f64()),
                noisy.out.truth.noise_records().to_string(),
            ])
        );
    }
}

fn percent_table(title: &str, columns: Vec<(String, BreakdownReport)>) {
    println!("\n== {title} ==");
    let mut comps: Vec<Component> = Vec::new();
    for (_, b) in &columns {
        for c in b.percentages.keys() {
            if !comps.contains(c) {
                comps.push(c.clone());
            }
        }
    }
    comps.sort();
    let mut cols = vec!["component".to_string()];
    cols.extend(columns.iter().map(|(n, _)| n.clone()));
    println!(
        "{}",
        header(&cols.iter().map(|s| s.as_str()).collect::<Vec<_>>())
    );
    for c in &comps {
        let mut cells = vec![c.to_string()];
        for (_, b) in &columns {
            cells.push(format!("{:.1}%", b.pct(c)));
        }
        println!("{}", row(&cells));
    }
    for (name, b) in &columns {
        println!(
            "   [{name}] {} requests of dominant pattern, mean total {}",
            b.count, b.mean_total
        );
    }
}

/// Fig. 15: latency percentages of the dominant (ViewItem-class)
/// pattern as clients rise, MaxThreads = 40.
fn fig15(scale: Scale) {
    let clients_list: &[usize] = if scale == Scale::Paper {
        &[500, 600, 700, 800]
    } else {
        &[300, 500]
    };
    let mut cols = Vec::new();
    for &clients in clients_list {
        let rt = run_and_trace(experiment(scale, clients), Nanos::from_millis(10));
        let b = BreakdownReport::dominant(&rt.corr.cags).expect("dominant pattern");
        cols.push((format!("c{clients}"), b));
    }
    percent_table(
        "Fig. 15: latency percentages of components (MaxThreads=40)",
        cols,
    );
}

/// Fig. 16: throughput / response time for MaxThreads 40 vs 250.
fn fig16(scale: Scale) {
    println!("\n== Fig. 16: MaxThreads 40 vs 250 ==");
    println!(
        "{}",
        header(&[
            "clients",
            "TP_MT40",
            "TP_MT250",
            "RT_MT40_ms",
            "RT_MT250_ms"
        ])
    );
    for clients in scale.client_sweep() {
        let run = |mt: usize| {
            let mut cfg = experiment(scale, clients);
            cfg.spec = cfg.spec.with_max_threads(mt);
            multitier::run(cfg)
        };
        let a = run(40);
        let b = run(250);
        println!(
            "{}",
            row(&[
                clients.to_string(),
                format!("{:.1}", a.service.throughput()),
                format!("{:.1}", b.service.throughput()),
                format!("{:.0}", a.service.rt_mean().as_nanos() as f64 / 1e6),
                format!("{:.0}", b.service.rt_mean().as_nanos() as f64 / 1e6),
            ])
        );
    }
}

/// Fig. 17: latency percentages under injected faults + localization.
fn fig17(scale: Scale) {
    let clients = if scale == Scale::Paper { 500 } else { 200 };
    let cases: Vec<(&str, Vec<Fault>)> = vec![
        ("normal", vec![]),
        (
            "EJB_Delay",
            vec![Fault::EjbDelay {
                delay: Dist::Exp { mean: 60e6 },
            }],
        ),
        (
            "DataBase_Lock",
            vec![Fault::DbLock {
                hold: Dist::Exp { mean: 4e6 },
            }],
        ),
        (
            "EJB_Network",
            vec![Fault::AppNetDegrade { bps: 10_000_000 }],
        ),
    ];
    let mut cols = Vec::new();
    for (name, faults) in &cases {
        let mut cfg = experiment(scale, clients);
        for f in faults {
            cfg.spec = cfg.spec.with_fault(f.clone());
        }
        let rt = run_and_trace(cfg, Nanos::from_millis(10));
        let b = BreakdownReport::dominant(&rt.corr.cags).expect("dominant pattern");
        cols.push((name.to_string(), b));
    }
    percent_table(
        "Fig. 17: latency percentages for abnormal cases",
        cols.clone(),
    );
    // §5.4 localization on each abnormal case.
    println!("\n-- automatic localization (§5.4 reasoning) --");
    let normal = &cols[0].1;
    for (name, b) in cols.iter().skip(1) {
        let diff = DiffReport::between(normal, b);
        match Diagnosis::localize(&diff, 6.0) {
            Some(d) => println!("[{name}] suspect: {} — {}", d.suspect, d.explanation),
            None => println!("[{name}] no significant change detected"),
        }
    }
}

/// EXT-1: precise vs WAP5-style nesting accuracy as concurrency rises.
fn ext1(scale: Scale) {
    println!("\n== EXT-1: PreciseTracer vs WAP5-style nesting accuracy ==");
    println!(
        "{}",
        header(&["clients", "requests", "precise_acc", "nesting_acc"])
    );
    let clients_list: &[usize] = if scale == Scale::Paper {
        &[10, 100, 400, 800]
    } else {
        &[10, 100, 300]
    };
    for &clients in clients_list {
        let rt = run_and_trace(experiment(scale, clients), Nanos::from_millis(10));
        let inferred = infer_paths(
            &rt.out.records,
            &rt.out.access_spec(),
            &NestingConfig::default(),
        );
        let truth_sets: Vec<Vec<u64>> = rt
            .out
            .truth
            .requests()
            .filter(|r| r.completed.is_some() && !r.records.is_empty())
            .map(|r| {
                let mut v = r.records.clone();
                v.sort_unstable();
                v
            })
            .collect();
        let paths: Vec<Vec<u64>> = inferred.into_iter().map(|p| p.tags).collect();
        let nest = evaluate(&paths, &truth_sets);
        println!(
            "{}",
            row(&[
                clients.to_string(),
                rt.accuracy.logged_requests.to_string(),
                format!("{:.1}%", rt.accuracy.accuracy() * 100.0),
                format!("{:.1}%", nest.accuracy() * 100.0),
            ])
        );
    }
}

/// EXT-2: ablation of the algorithm's ingredients.
fn ext2(scale: Scale) {
    println!("\n== EXT-2: ablation (accuracy with ingredients disabled) ==");
    println!("{}", header(&["variant", "accuracy", "false_paths"]));
    let clients = if scale == Scale::Paper { 400 } else { 150 };
    let mut cfg = experiment(scale, clients);
    cfg.noise = paper_noise(scale);
    let out = multitier::run(cfg);
    let variants: Vec<(&str, CorrelatorConfig)> = {
        let base = out.correlator_config(Nanos::from_millis(2));
        vec![
            ("full algorithm", base.clone()),
            (
                "no swap (Fig.6 off)",
                base.clone().with_ranker(RankerOptions {
                    swap: false,
                    ..base.ranker
                }),
            ),
            (
                // Without merging, multi-segment receives can never be
                // Rule-1 matched, so the window boost cannot help and is
                // capped to keep the (deliberately broken) variant from
                // buffering the whole log.
                "no segment merging",
                base.clone()
                    .with_engine(EngineOptions {
                        merge_segments: false,
                        ..base.engine.clone()
                    })
                    .with_ranker(RankerOptions {
                        fetch_boost: 2,
                        ..base.ranker
                    }),
            ),
            (
                "no thread-reuse check",
                base.clone().with_engine(EngineOptions {
                    thread_reuse_check: false,
                    ..base.engine.clone()
                }),
            ),
            (
                "no noise discarding",
                base.clone().with_ranker(RankerOptions {
                    noise_discard: false,
                    ..base.ranker
                }),
            ),
        ]
    };
    for (name, vcfg) in variants {
        let t = Instant::now();
        let res =
            Pipeline::new(vcfg.into()).and_then(|p| p.run(Source::records(out.records.clone())));
        let secs = t.elapsed().as_secs_f64();
        match res {
            Ok(corr) => {
                let acc = out.truth.evaluate(&corr.cags);
                println!(
                    "{}  ({secs:.2}s)",
                    row(&[
                        name.to_string(),
                        format!("{:.1}%", acc.accuracy() * 100.0),
                        acc.false_paths.to_string(),
                    ])
                );
            }
            Err(e) => println!("{name}: error: {e}"),
        }
    }
    // Attribute filters as an extra variant: drop sshd noise up front.
    let filtered = out
        .correlator_config(Nanos::from_millis(2))
        .with_filters(FilterSet::new().drop_program("sshd"));
    let corr = Pipeline::new(filtered.into())
        .expect("config")
        .run(Source::records(out.records.clone()))
        .expect("config");
    let acc = out.truth.evaluate(&corr.cags);
    println!(
        "{}",
        row(&[
            "attr-filter sshd".to_string(),
            format!("{:.1}%", acc.accuracy() * 100.0),
            format!("filtered={}", corr.metrics.filtered_out),
        ])
    );
    let _ = Mix::browse_only();
    let _: NoiseSpec = NoiseSpec::none();
}
