//! Shared helpers for the benchmark harness: experiment runners and
//! table formatting used by both the `repro` binary (full paper-scale
//! regeneration of every figure) and the Criterion benches (timed
//! micro/meso versions of the same pipelines).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

use multitier::{ExperimentConfig, ExperimentOutput, Mix, NoiseSpec, Phases};
use simnet::Dist;
use tracer_core::{CorrelationOutput, Nanos};

/// Scale of an experiment sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full paper-scale sessions (2 min up, 7.5 min runtime, 1 min down).
    Paper,
    /// Reduced sessions for smoke runs and CI.
    Quick,
}

impl Scale {
    /// Session phases for this scale.
    pub fn phases(self) -> Phases {
        match self {
            Scale::Paper => Phases::paper(),
            Scale::Quick => Phases::quick(40),
        }
    }

    /// Client counts for sweeps (Figs. 8/12/13/16).
    pub fn client_sweep(self) -> Vec<usize> {
        match self {
            Scale::Paper => (1..=10).map(|i| i * 100).collect(),
            Scale::Quick => vec![100, 300, 500, 700, 900],
        }
    }

    /// Think time matching the paper's ~10k requests per 100 clients.
    pub fn think(self) -> Dist {
        Dist::Exp { mean: 6.5e9 }
    }
}

/// Builds the standard experiment configuration for a scale.
pub fn experiment(scale: Scale, clients: usize) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper(clients);
    cfg.phases = scale.phases();
    cfg.think = scale.think();
    cfg
}

/// An experiment run plus its correlation and accuracy results.
pub struct RunAndTrace {
    /// The simulated session.
    pub out: ExperimentOutput,
    /// Correlation result.
    pub corr: CorrelationOutput,
    /// Path accuracy vs ground truth.
    pub accuracy: multitier::AccuracyReport,
    /// Wall-clock correlation time (the paper's "correlation time").
    pub correlation_time: std::time::Duration,
}

/// Runs and correlates with a window.
pub fn run_and_trace(cfg: ExperimentConfig, window: Nanos) -> RunAndTrace {
    let out = multitier::run(cfg);
    trace_only(out, window)
}

/// Correlates an existing run (reusing its log).
pub fn trace_only(out: ExperimentOutput, window: Nanos) -> RunAndTrace {
    let t = Instant::now();
    let (corr, accuracy) = out.correlate(window).expect("valid correlator config");
    let correlation_time = t.elapsed();
    RunAndTrace {
        out,
        corr,
        accuracy,
        correlation_time,
    }
}

/// The Browse_Only mix (sugar re-export for benches).
pub fn browse_only() -> Mix {
    Mix::browse_only()
}

/// A noise spec matching the paper's ~200K noise activities per session
/// at the given scale.
pub fn paper_noise(scale: Scale) -> NoiseSpec {
    let secs = scale.phases().total().as_secs_f64();
    NoiseSpec {
        ssh_msgs_per_sec: 30.0,
        mysql_msgs_per_sec: (200_000.0 / secs) - 30.0,
    }
}

/// Renders one table row with fixed-width columns.
pub fn row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| format!("{c:>14}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Renders a header + separator.
pub fn header(cols: &[&str]) -> String {
    let h = row(&cols.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let sep = "-".repeat(h.len());
    format!("{h}\n{sep}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_differ() {
        assert!(Scale::Paper.phases().total() > Scale::Quick.phases().total());
        assert_eq!(Scale::Paper.client_sweep().len(), 10);
    }

    #[test]
    fn table_helpers_align() {
        let h = header(&["a", "b"]);
        assert!(h.contains('a'));
        assert!(h.lines().count() == 2);
        let r = row(&["1".into(), "2".into()]);
        assert_eq!(r.len(), 14 + 1 + 14);
    }

    #[test]
    fn noise_spec_totals_about_200k() {
        let n = paper_noise(Scale::Paper);
        let secs = Scale::Paper.phases().total().as_secs_f64();
        let total = (n.ssh_msgs_per_sec + n.mysql_msgs_per_sec) * secs;
        assert!((total - 200_000.0).abs() < 1_000.0, "total {total}");
    }
}
