//! # simnet — discrete-event simulation substrate
//!
//! The PreciseTracer paper (DSN 2009) evaluated on an 8-node Linux
//! cluster running RUBiS, with SystemTap probes in each kernel's TCP
//! stack. Reproducing that hardware is impossible here, so this crate
//! provides the simulation substrate that stands in for it:
//!
//! * [`sim`] — a deterministic discrete-event simulator (event queue,
//!   world trait, run loop);
//! * [`clock`] — per-node clocks with constant skew and drift, producing
//!   the *local* timestamps the tracing algorithm must survive;
//! * [`tcp`] — a TCP-like reliable channel model with MSS segmentation,
//!   bandwidth/latency/jitter, and receiver-side coalescing, yielding
//!   the n-to-n SEND/RECEIVE asymmetry of the paper's Fig. 4;
//! * [`resource`] — FIFO resources (CPU cores, thread pools, locks);
//! * [`dist`] — reproducible random distributions on top of `rand`;
//! * [`stats`] — online statistics and histograms for reports.
//!
//! Everything is deterministic given a seed: no wall clock, no threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod dist;
pub mod resource;
pub mod sim;
pub mod stats;
pub mod tcp;
pub mod time;

pub use clock::ClockModel;
pub use dist::Dist;
pub use resource::{FifoResource, Gate};
pub use sim::{Scheduler, Simulator, World};
pub use stats::{Histogram, OnlineStats, RateSeries};
pub use tcp::{Addr, PortAlloc, RecvBuffer, SegmentIngest, SegmentPlan, Wire, WireParams};
pub use time::{SimDur, SimTime};
