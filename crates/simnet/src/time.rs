//! Simulated (global, true) time. Nodes *observe* time through their
//! skewed [`ClockModel`](crate::clock::ClockModel)s; `SimTime` itself is
//! the simulator's omniscient clock.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant of true simulated time, in nanoseconds since simulation
/// start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float (reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed duration since `earlier` (saturating).
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDur {
        SimDur(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDur) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDur> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDur) {
        self.0 += d.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDur(pub u64);

impl SimDur {
    /// Zero duration.
    pub const ZERO: SimDur = SimDur(0);

    /// From nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDur(ns)
    }

    /// From microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDur(us * 1_000)
    }

    /// From milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDur(ms * 1_000_000)
    }

    /// From seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDur(s * 1_000_000_000)
    }

    /// From float seconds (clamped at zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDur((s.max(0.0) * 1e9) as u64)
    }

    /// Nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds (rounded down).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Scales by an integer.
    #[inline]
    pub const fn times(self, k: u64) -> SimDur {
        SimDur(self.0 * k)
    }
}

impl Add for SimDur {
    type Output = SimDur;
    #[inline]
    fn add(self, o: SimDur) -> SimDur {
        SimDur(self.0 + o.0)
    }
}

impl AddAssign for SimDur {
    #[inline]
    fn add_assign(&mut self, o: SimDur) {
        self.0 += o.0;
    }
}

impl Sub for SimDur {
    type Output = SimDur;
    #[inline]
    fn sub(self, o: SimDur) -> SimDur {
        SimDur(self.0.saturating_sub(o.0))
    }
}

impl fmt::Display for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}us", self.0 / 1_000)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDur::from_millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        assert_eq!(t.since(SimTime::ZERO), SimDur::from_millis(5));
        assert_eq!(SimTime::ZERO.since(t), SimDur::ZERO);
        assert_eq!(SimDur::from_secs(1).times(3), SimDur::from_secs(3));
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDur::from_secs_f64(0.001), SimDur::from_millis(1));
        assert_eq!(SimDur::from_secs_f64(-5.0), SimDur::ZERO);
        assert_eq!(SimDur::from_micros(1500).as_millis(), 1);
        assert!((SimTime(1_500_000_000).as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn display() {
        assert_eq!(SimDur::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDur::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDur::from_micros(7).to_string(), "7us");
        assert_eq!(SimTime(1_000_000).to_string(), "0.001000s");
    }
}
