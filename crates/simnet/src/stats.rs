//! Online statistics, log-bucketed histograms and rate series for the
//! service-side metrics (throughput, response time) of Figs. 8, 12, 13
//! and 16.

use crate::time::{SimDur, SimTime};

/// Welford online mean/variance.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (0 when n < 2).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Minimum observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// Histogram over log-spaced buckets (2% resolution), good enough for
/// latency percentiles without storing samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    total: u64,
}

const HIST_BASE: f64 = 1.02;
const HIST_BUCKETS: usize = 1600; // covers ~1ns .. ~2e13ns

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; HIST_BUCKETS],
            total: 0,
        }
    }

    fn index(value: f64) -> usize {
        if value <= 1.0 {
            return 0;
        }
        let i = value.ln() / HIST_BASE.ln();
        (i as usize).min(HIST_BUCKETS - 1)
    }

    /// Records a value (interpreted as nanoseconds by convention).
    pub fn record(&mut self, value: f64) {
        self.buckets[Self::index(value.max(0.0))] += 1;
        self.total += 1;
    }

    /// Records a duration.
    pub fn record_dur(&mut self, d: SimDur) {
        self.record(d.as_nanos() as f64);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Approximate quantile `q` in [0, 1]; 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return HIST_BASE.powi(i as i32);
            }
        }
        HIST_BASE.powi(HIST_BUCKETS as i32)
    }

    /// Median shortcut.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }
}

/// Event counter binned over fixed wall-time intervals: throughput
/// series.
#[derive(Debug, Clone)]
pub struct RateSeries {
    bin: SimDur,
    counts: Vec<u64>,
}

impl RateSeries {
    /// A series with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics when the bin width is zero.
    pub fn new(bin: SimDur) -> Self {
        assert!(bin.as_nanos() > 0, "bin width must be positive");
        RateSeries {
            bin,
            counts: Vec::new(),
        }
    }

    /// Counts one event at `t`.
    pub fn record(&mut self, t: SimTime) {
        let idx = (t.as_nanos() / self.bin.as_nanos()) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
    }

    /// Total events.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Events per second per bin.
    pub fn rates(&self) -> Vec<f64> {
        let secs = self.bin.as_secs_f64();
        self.counts.iter().map(|&c| c as f64 / secs).collect()
    }

    /// Mean rate over a time range (events/sec).
    pub fn mean_rate_between(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        let a = (from.as_nanos() / self.bin.as_nanos()) as usize;
        let b = to.as_nanos().div_ceil(self.bin.as_nanos()) as usize;
        let n: u64 = self.counts.iter().skip(a).take(b.saturating_sub(a)).sum();
        n as f64 / to.since(from).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_mean_and_std() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.138).abs() < 0.01);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 0.0);
    }

    #[test]
    fn histogram_quantiles_are_close() {
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(i as f64 * 1_000.0); // 1k..10M
        }
        let p50 = h.quantile(0.5);
        assert!((p50 / 5_000_000.0 - 1.0).abs() < 0.05, "p50={p50}");
        let p99 = h.quantile(0.99);
        assert!((p99 / 9_900_000.0 - 1.0).abs() < 0.05, "p99={p99}");
    }

    #[test]
    fn histogram_empty_quantile_zero() {
        assert_eq!(Histogram::new().quantile(0.5), 0.0);
    }

    #[test]
    fn histogram_handles_extremes() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(f64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0) > 0.0);
    }

    #[test]
    fn rate_series_bins() {
        let mut r = RateSeries::new(SimDur::from_secs(1));
        for i in 0..10 {
            r.record(SimTime(i * 500_000_000)); // every 0.5s
        }
        assert_eq!(r.total(), 10);
        let rates = r.rates();
        assert_eq!(rates[0], 2.0);
        let mean = r.mean_rate_between(SimTime::ZERO, SimTime(5_000_000_000));
        assert!((mean - 2.0).abs() < 1e-9, "mean={mean}");
    }

    #[test]
    fn rate_series_range_queries() {
        let mut r = RateSeries::new(SimDur::from_secs(1));
        r.record(SimTime(500_000_000));
        r.record(SimTime(2_500_000_000));
        assert_eq!(
            r.mean_rate_between(SimTime(2_000_000_000), SimTime(3_000_000_000)),
            1.0
        );
        assert_eq!(
            r.mean_rate_between(SimTime(9_000_000_000), SimTime(9_000_000_000)),
            0.0
        );
    }
}
