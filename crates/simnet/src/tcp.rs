//! A TCP-like reliable, FIFO, byte-stream channel model.
//!
//! The model captures exactly the properties the tracing algorithm
//! depends on (and is stressed by):
//!
//! * reliable FIFO byte delivery per direction of a connection,
//! * **MSS segmentation**: one application `send()` becomes several wire
//!   segments, arriving spread over time (bandwidth + latency),
//! * **receiver coalescing**: one application `recv()` consumes all
//!   bytes that have arrived, so the kernel-level SEND/RECEIVE records
//!   are n-to-n per logical message (the paper's Fig. 4),
//! * application reads do not cross logical message boundaries
//!   (request/response protocols read exactly one message), unless the
//!   [`RecvBuffer`] is built with coalescing allowed — a stress mode
//!   that violates the paper's assumptions on purpose.

use std::collections::VecDeque;
use std::fmt;
use std::net::Ipv4Addr;

use rand::Rng;

use crate::dist::Dist;
use crate::time::{SimDur, SimTime};

/// An IPv4 endpoint (mirror of the tracer's endpoint type; kept separate
/// so `simnet` does not depend on `tracer-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr {
    /// IPv4 address.
    pub ip: Ipv4Addr,
    /// TCP port.
    pub port: u16,
}

impl Addr {
    /// Constructs an address.
    pub const fn new(ip: Ipv4Addr, port: u16) -> Self {
        Addr { ip, port }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

/// Ephemeral port allocator for one host.
#[derive(Debug, Clone)]
pub struct PortAlloc {
    next: u16,
}

impl Default for PortAlloc {
    fn default() -> Self {
        PortAlloc::new()
    }
}

impl PortAlloc {
    /// Starts allocating at 32768.
    pub fn new() -> Self {
        PortAlloc { next: 32_768 }
    }

    /// Returns a fresh ephemeral port, wrapping within 32768..61000.
    pub fn next_port(&mut self) -> u16 {
        let p = self.next;
        self.next = if self.next >= 60_999 {
            32_768
        } else {
            self.next + 1
        };
        p
    }
}

/// Physical parameters of a link (one direction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireParams {
    /// One-way propagation latency.
    pub latency: SimDur,
    /// Random extra latency per message.
    pub jitter: Dist,
    /// Bandwidth in bits per second (100 Mbps Ethernet in the paper;
    /// 10 Mbps for the degraded-NIC fault).
    pub bandwidth_bps: u64,
    /// Maximum segment size in bytes (1448 for Ethernet TCP).
    pub mss: u32,
}

impl Default for WireParams {
    fn default() -> Self {
        WireParams {
            latency: SimDur::from_micros(120),
            jitter: Dist::Uniform {
                lo: 0.0,
                hi: 20_000.0,
            }, // up to 20us
            bandwidth_bps: 100_000_000,
            mss: 1448,
        }
    }
}

impl WireParams {
    /// Serialization delay for `bytes` at this bandwidth.
    pub fn tx_time(&self, bytes: u64) -> SimDur {
        SimDur(((bytes as u128 * 8 * 1_000_000_000) / self.bandwidth_bps as u128) as u64)
    }
}

/// One planned wire segment: `bytes` of payload arriving at `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentPlan {
    /// Arrival time at the receiver's kernel.
    pub at: SimTime,
    /// Payload bytes in this segment.
    pub bytes: u64,
}

/// One direction of a link; tracks when the transmitter is next free so
/// that back-to-back messages serialize (this is what makes the 10 Mbps
/// fault visible).
#[derive(Debug, Clone)]
pub struct Wire {
    /// Physical parameters.
    pub params: WireParams,
    next_free_tx: SimTime,
    /// Total payload bytes accepted.
    pub bytes_sent: u64,
}

impl Wire {
    /// A wire with the given parameters.
    pub fn new(params: WireParams) -> Self {
        Wire {
            params,
            next_free_tx: SimTime::ZERO,
            bytes_sent: 0,
        }
    }

    /// Plans the wire segments for an application send of `bytes` at
    /// `now`. Returns per-segment arrival times, FIFO and
    /// non-decreasing.
    pub fn transmit<R: Rng + ?Sized>(
        &mut self,
        now: SimTime,
        bytes: u64,
        rng: &mut R,
    ) -> Vec<SegmentPlan> {
        assert!(bytes > 0, "cannot transmit zero bytes");
        self.bytes_sent += bytes;
        let jitter = SimDur(self.params.jitter.sample(rng) as u64);
        let mut tx = self.next_free_tx.max(now);
        let mut out = Vec::new();
        let mut left = bytes;
        while left > 0 {
            let seg = left.min(self.params.mss as u64);
            left -= seg;
            tx += self.params.tx_time(seg);
            out.push(SegmentPlan {
                at: tx + self.params.latency + jitter,
                bytes: seg,
            });
        }
        self.next_free_tx = tx;
        out
    }
}

/// Receiver-side buffer for one direction of one connection.
///
/// Logical message boundaries are declared by the sender side
/// ([`RecvBuffer::push_message`]); segment arrivals accumulate bytes;
/// application reads consume arrived bytes without crossing the current
/// message boundary (unless coalescing mode is on).
#[derive(Debug, Clone, Default)]
pub struct RecvBuffer {
    /// Bytes arrived but not yet read.
    arrived: u64,
    /// Remaining unread bytes of each in-flight logical message, FIFO.
    bounds: VecDeque<u64>,
    /// Allow reads to cross message boundaries (assumption-violation
    /// stress mode).
    coalesce_across_messages: bool,
}

/// Result of an application read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadResult {
    /// Bytes consumed by this read (0 when nothing was readable).
    pub bytes: u64,
    /// Number of logical messages *completed* by this read.
    pub messages_completed: u32,
}

impl RecvBuffer {
    /// A buffer with per-message read semantics (the realistic mode).
    pub fn new() -> Self {
        RecvBuffer::default()
    }

    /// A buffer whose reads may span messages (stress mode).
    pub fn with_coalescing() -> Self {
        RecvBuffer {
            coalesce_across_messages: true,
            ..RecvBuffer::default()
        }
    }

    /// Declares a logical message of `size` bytes entering the pipe.
    pub fn push_message(&mut self, size: u64) {
        assert!(size > 0, "empty message");
        self.bounds.push_back(size);
    }

    /// Records the arrival of a wire segment.
    pub fn on_arrival(&mut self, bytes: u64) {
        self.arrived += bytes;
    }

    /// Bytes the application could read right now.
    pub fn readable(&self) -> u64 {
        if self.coalesce_across_messages {
            self.arrived
        } else {
            match self.bounds.front() {
                Some(&rem) => self.arrived.min(rem),
                None => 0,
            }
        }
    }

    /// True when the *current* (front) message has fully arrived.
    pub fn front_message_complete(&self) -> bool {
        matches!(self.bounds.front(), Some(&rem) if self.arrived >= rem)
    }

    /// Application `recv()`: consumes everything readable.
    pub fn read(&mut self) -> ReadResult {
        let mut take = self.readable();
        if take == 0 {
            return ReadResult {
                bytes: 0,
                messages_completed: 0,
            };
        }
        self.arrived -= take;
        let mut completed = 0;
        let bytes = take;
        while take > 0 {
            let Some(front) = self.bounds.front_mut() else {
                break;
            };
            if take >= *front {
                take -= *front;
                self.bounds.pop_front();
                completed += 1;
            } else {
                *front -= take;
                take = 0;
            }
        }
        ReadResult {
            bytes,
            messages_completed: completed,
        }
    }

    /// Number of logical messages still in flight (partially arrived or
    /// unread).
    pub fn pending_messages(&self) -> usize {
        self.bounds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn quiet_params() -> WireParams {
        WireParams {
            latency: SimDur::from_micros(100),
            jitter: Dist::Constant(0.0),
            bandwidth_bps: 100_000_000,
            mss: 1448,
        }
    }

    #[test]
    fn small_message_is_one_segment() {
        let mut w = Wire::new(quiet_params());
        let segs = w.transmit(SimTime::ZERO, 500, &mut rng());
        assert_eq!(segs.len(), 1);
        // 500 B at 100 Mbps = 40us tx + 100us latency.
        assert_eq!(segs[0].at, SimTime(140_000));
        assert_eq!(segs[0].bytes, 500);
    }

    #[test]
    fn large_message_segments_at_mss() {
        let mut w = Wire::new(quiet_params());
        let segs = w.transmit(SimTime::ZERO, 10_000, &mut rng());
        assert_eq!(segs.len(), 7); // ceil(10000/1448)
        assert_eq!(segs.iter().map(|s| s.bytes).sum::<u64>(), 10_000);
        // Arrivals strictly ordered.
        for pair in segs.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        assert_eq!(segs.last().unwrap().bytes, 10_000 - 6 * 1448);
    }

    #[test]
    fn bandwidth_decrease_slows_arrivals() {
        let fast = {
            let mut w = Wire::new(quiet_params());
            w.transmit(SimTime::ZERO, 10_000, &mut rng())
                .last()
                .unwrap()
                .at
        };
        let slow = {
            let mut p = quiet_params();
            p.bandwidth_bps = 10_000_000; // the EJB_Network fault
            let mut w = Wire::new(p);
            w.transmit(SimTime::ZERO, 10_000, &mut rng())
                .last()
                .unwrap()
                .at
        };
        assert!(slow.as_nanos() > 5 * fast.as_nanos());
    }

    #[test]
    fn back_to_back_messages_serialize() {
        let mut w = Wire::new(quiet_params());
        let a = w.transmit(SimTime::ZERO, 1448, &mut rng());
        let b = w.transmit(SimTime::ZERO, 1448, &mut rng());
        assert!(
            b[0].at > a[0].at,
            "second message must queue behind the first"
        );
    }

    #[test]
    fn transmitter_frees_up_over_time() {
        let mut w = Wire::new(quiet_params());
        let _ = w.transmit(SimTime::ZERO, 1448, &mut rng());
        // Much later, the wire is idle again: same relative timing.
        let later = SimTime(1_000_000_000);
        let b = w.transmit(later, 500, &mut rng());
        assert_eq!(b[0].at, SimTime(1_000_140_000));
    }

    #[test]
    fn recv_buffer_reads_within_message() {
        let mut rb = RecvBuffer::new();
        rb.push_message(1000);
        rb.on_arrival(600);
        assert_eq!(rb.readable(), 600);
        let r1 = rb.read();
        assert_eq!(r1.bytes, 600);
        assert_eq!(r1.messages_completed, 0);
        rb.on_arrival(400);
        let r2 = rb.read();
        assert_eq!(r2.bytes, 400);
        assert_eq!(r2.messages_completed, 1);
        assert_eq!(rb.pending_messages(), 0);
    }

    #[test]
    fn recv_does_not_cross_message_boundary() {
        let mut rb = RecvBuffer::new();
        rb.push_message(100);
        rb.push_message(200);
        rb.on_arrival(300); // both messages fully arrived
        let r1 = rb.read();
        assert_eq!(r1.bytes, 100);
        assert_eq!(r1.messages_completed, 1);
        let r2 = rb.read();
        assert_eq!(r2.bytes, 200);
        assert_eq!(r2.messages_completed, 1);
    }

    #[test]
    fn coalescing_mode_crosses_boundaries() {
        let mut rb = RecvBuffer::with_coalescing();
        rb.push_message(100);
        rb.push_message(200);
        rb.on_arrival(150);
        let r = rb.read();
        assert_eq!(r.bytes, 150);
        assert_eq!(r.messages_completed, 1); // 100 + 50 of the next
        assert_eq!(rb.pending_messages(), 1);
    }

    #[test]
    fn read_empty_returns_zero() {
        let mut rb = RecvBuffer::new();
        assert_eq!(rb.read().bytes, 0);
        rb.on_arrival(10); // bytes with no declared message: unreadable
        assert_eq!(rb.readable(), 0);
    }

    #[test]
    fn front_message_complete_tracks_arrivals() {
        let mut rb = RecvBuffer::new();
        rb.push_message(100);
        assert!(!rb.front_message_complete());
        rb.on_arrival(99);
        assert!(!rb.front_message_complete());
        rb.on_arrival(1);
        assert!(rb.front_message_complete());
    }

    #[test]
    fn port_alloc_wraps() {
        let mut p = PortAlloc::new();
        let first = p.next_port();
        assert_eq!(first, 32_768);
        for _ in 0..(61_000 - 32_768) {
            p.next_port();
        }
        assert!(p.next_port() >= 32_768);
    }
}
