//! A TCP-like reliable, FIFO, byte-stream channel model.
//!
//! The model captures exactly the properties the tracing algorithm
//! depends on (and is stressed by):
//!
//! * reliable FIFO byte delivery per direction of a connection,
//! * **MSS segmentation**: one application `send()` becomes several wire
//!   segments, arriving spread over time (bandwidth + latency),
//! * **receiver coalescing**: one application `recv()` consumes all
//!   bytes that have arrived, so the kernel-level SEND/RECEIVE records
//!   are n-to-n per logical message (the paper's Fig. 4),
//! * application reads do not cross logical message boundaries
//!   (request/response protocols read exactly one message), unless the
//!   [`RecvBuffer`] is built with coalescing allowed — a stress mode
//!   that violates the paper's assumptions on purpose,
//! * **loss and retransmission**: with [`WireParams::loss`] > 0, wire
//!   segments are dropped with that probability and retransmitted after
//!   an exponentially backed-off [`WireParams::rto`]; delayed ACKs also
//!   trigger *spurious* retransmissions whose duplicate byte ranges
//!   arrive on top of the original. The receiver reassembles by stream
//!   offset ([`RecvBuffer::on_segment`]): out-of-order segments are held
//!   until the gap fills, duplicates are counted and discarded — exactly
//!   what a kernel TCP receive queue does, while a sniffer on the wire
//!   would still see every duplicate arrival.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::net::Ipv4Addr;

use rand::Rng;

use crate::dist::Dist;
use crate::time::{SimDur, SimTime};

/// An IPv4 endpoint (mirror of the tracer's endpoint type; kept separate
/// so `simnet` does not depend on `tracer-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr {
    /// IPv4 address.
    pub ip: Ipv4Addr,
    /// TCP port.
    pub port: u16,
}

impl Addr {
    /// Constructs an address.
    pub const fn new(ip: Ipv4Addr, port: u16) -> Self {
        Addr { ip, port }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

/// Ephemeral port allocator for one host.
#[derive(Debug, Clone)]
pub struct PortAlloc {
    next: u16,
}

impl Default for PortAlloc {
    fn default() -> Self {
        PortAlloc::new()
    }
}

impl PortAlloc {
    /// Starts allocating at 32768.
    pub fn new() -> Self {
        PortAlloc { next: 32_768 }
    }

    /// Returns a fresh ephemeral port, wrapping within 32768..61000.
    pub fn next_port(&mut self) -> u16 {
        let p = self.next;
        self.next = if self.next >= 60_999 {
            32_768
        } else {
            self.next + 1
        };
        p
    }
}

/// Physical parameters of a link (one direction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireParams {
    /// One-way propagation latency.
    pub latency: SimDur,
    /// Random extra latency per message.
    pub jitter: Dist,
    /// Bandwidth in bits per second (100 Mbps Ethernet in the paper;
    /// 10 Mbps for the degraded-NIC fault).
    pub bandwidth_bps: u64,
    /// Maximum segment size in bytes (1448 for Ethernet TCP).
    pub mss: u32,
    /// Per-segment loss probability (0.0 = reliable link). Each lost
    /// segment is retransmitted after [`WireParams::rto`] with
    /// exponential backoff; a delivered segment whose ACK is "lost"
    /// (same probability) is spuriously retransmitted, producing a
    /// duplicate byte-range arrival.
    pub loss: f64,
    /// Retransmission timeout (base of the exponential backoff).
    pub rto: SimDur,
}

impl Default for WireParams {
    fn default() -> Self {
        WireParams {
            latency: SimDur::from_micros(120),
            jitter: Dist::Uniform {
                lo: 0.0,
                hi: 20_000.0,
            }, // up to 20us
            bandwidth_bps: 100_000_000,
            mss: 1448,
            loss: 0.0,
            rto: SimDur::from_millis(30),
        }
    }
}

impl WireParams {
    /// Serialization delay for `bytes` at this bandwidth.
    pub fn tx_time(&self, bytes: u64) -> SimDur {
        SimDur(((bytes as u128 * 8 * 1_000_000_000) / self.bandwidth_bps as u128) as u64)
    }
}

/// One planned wire segment: `bytes` of payload arriving at `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentPlan {
    /// Arrival time at the receiver's kernel.
    pub at: SimTime,
    /// Byte offset of this segment within the transmitted message.
    pub offset: u64,
    /// Payload bytes in this segment.
    pub bytes: u64,
}

/// Retransmission attempts are capped so simulation always terminates:
/// after this many consecutive losses the segment is delivered anyway
/// (a real TCP would keep trying far longer than any session lasts).
const MAX_RETRANS: u32 = 6;

/// One direction of a link; tracks when the transmitter is next free so
/// that back-to-back messages serialize (this is what makes the 10 Mbps
/// fault visible).
#[derive(Debug, Clone)]
pub struct Wire {
    /// Physical parameters.
    pub params: WireParams,
    next_free_tx: SimTime,
    /// Total payload bytes accepted.
    pub bytes_sent: u64,
}

impl Wire {
    /// A wire with the given parameters.
    pub fn new(params: WireParams) -> Self {
        Wire {
            params,
            next_free_tx: SimTime::ZERO,
            bytes_sent: 0,
        }
    }

    /// Plans the wire segments for an application send of `bytes` at
    /// `now`. With a reliable link ([`WireParams::loss`] = 0) arrivals
    /// are FIFO and non-decreasing; with loss, lost segments arrive
    /// late (after RTO backoff, possibly reordered behind later
    /// segments) and spurious retransmissions yield extra plans whose
    /// byte ranges duplicate already-delivered ones.
    pub fn transmit<R: Rng + ?Sized>(
        &mut self,
        now: SimTime,
        bytes: u64,
        rng: &mut R,
    ) -> Vec<SegmentPlan> {
        assert!(bytes > 0, "cannot transmit zero bytes");
        self.bytes_sent += bytes;
        let jitter = SimDur(self.params.jitter.sample(rng) as u64);
        let mut tx = self.next_free_tx.max(now);
        let mut out = Vec::new();
        let mut left = bytes;
        let mut offset = 0u64;
        while left > 0 {
            let seg = left.min(self.params.mss as u64);
            left -= seg;
            tx += self.params.tx_time(seg);
            let base = tx + self.params.latency + jitter;
            if self.params.loss > 0.0 {
                // Count consecutive losses of this segment; each retry
                // waits one more backoff step (rto, 2*rto, 4*rto, ...),
                // so the delivery lags by rto * (2^attempts - 1).
                let mut attempts = 0u32;
                while attempts < MAX_RETRANS && rng.gen_bool(self.params.loss) {
                    attempts += 1;
                }
                let lag = SimDur(self.params.rto.as_nanos() * ((1u64 << attempts) - 1));
                out.push(SegmentPlan {
                    at: base + lag,
                    offset,
                    bytes: seg,
                });
                // A first-try delivery whose ACK is lost is spuriously
                // retransmitted: the duplicate range arrives one RTO
                // later on top of the original.
                if attempts == 0 && rng.gen_bool(self.params.loss) {
                    out.push(SegmentPlan {
                        at: base + self.params.rto,
                        offset,
                        bytes: seg,
                    });
                }
            } else {
                out.push(SegmentPlan {
                    at: base,
                    offset,
                    bytes: seg,
                });
            }
            offset += seg;
        }
        self.next_free_tx = tx;
        out
    }
}

/// Receiver-side buffer for one direction of one connection.
///
/// Logical message boundaries are declared by the sender side
/// ([`RecvBuffer::push_message`]); segment arrivals accumulate bytes;
/// application reads consume arrived bytes without crossing the current
/// message boundary (unless coalescing mode is on).
#[derive(Debug, Clone, Default)]
pub struct RecvBuffer {
    /// Contiguously delivered bytes not yet read.
    arrived: u64,
    /// Remaining unread bytes of each in-flight logical message, FIFO.
    bounds: VecDeque<u64>,
    /// Allow reads to cross message boundaries (assumption-violation
    /// stress mode).
    coalesce_across_messages: bool,
    /// Next expected stream offset (the contiguous high-water mark).
    expected: u64,
    /// Out-of-order segments held for reassembly: offset → length,
    /// non-adjacent after merging.
    ooo: BTreeMap<u64, u64>,
}

/// What one segment arrival contributed to the receive queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SegmentIngest {
    /// Bytes never seen before (delivered contiguously or held for
    /// reassembly).
    pub fresh: u64,
    /// Bytes duplicating an already-delivered or already-held range —
    /// what a retransmission looks like to the receiver's kernel, which
    /// silently discards them (a wire sniffer still sees the arrival).
    pub duplicate: u64,
}

/// Result of an application read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadResult {
    /// Bytes consumed by this read (0 when nothing was readable).
    pub bytes: u64,
    /// Number of logical messages *completed* by this read.
    pub messages_completed: u32,
}

impl RecvBuffer {
    /// A buffer with per-message read semantics (the realistic mode).
    pub fn new() -> Self {
        RecvBuffer::default()
    }

    /// A buffer whose reads may span messages (stress mode).
    pub fn with_coalescing() -> Self {
        RecvBuffer {
            coalesce_across_messages: true,
            ..RecvBuffer::default()
        }
    }

    /// Declares a logical message of `size` bytes entering the pipe.
    pub fn push_message(&mut self, size: u64) {
        assert!(size > 0, "empty message");
        self.bounds.push_back(size);
    }

    /// Records the in-order arrival of a wire segment (reliable-link
    /// convenience; equivalent to [`RecvBuffer::on_segment`] at the
    /// contiguous high-water mark).
    pub fn on_arrival(&mut self, bytes: u64) {
        let at = self.expected;
        self.on_segment(at, bytes);
    }

    /// Records the arrival of a wire segment carrying stream bytes
    /// `[offset, offset + bytes)`. In-order segments extend the readable
    /// prefix (and drain any now-contiguous held ranges); out-of-order
    /// segments are held for reassembly; duplicated ranges are counted
    /// and discarded, like a kernel TCP receive queue.
    pub fn on_segment(&mut self, offset: u64, bytes: u64) -> SegmentIngest {
        self.on_segment_impl(offset, bytes, None)
    }

    /// [`RecvBuffer::on_segment`] that additionally reports each
    /// duplicated contiguous sub-range as `(stream offset, length)` —
    /// what a `TCP_TRACE v2` sniffer frontend logs per duplicate
    /// arrival instead of one aggregate `retrans` count.
    pub fn on_segment_ranges(
        &mut self,
        offset: u64,
        bytes: u64,
        dups: &mut Vec<(u64, u64)>,
    ) -> SegmentIngest {
        self.on_segment_impl(offset, bytes, Some(dups))
    }

    fn on_segment_impl(
        &mut self,
        offset: u64,
        bytes: u64,
        mut dups: Option<&mut Vec<(u64, u64)>>,
    ) -> SegmentIngest {
        let mut ing = SegmentIngest::default();
        let mut note_dup = |start: u64, len: u64| {
            if len > 0 {
                if let Some(v) = dups.as_deref_mut() {
                    v.push((start, len));
                }
            }
        };
        let end = offset + bytes;
        // The portion below the contiguous high-water mark was already
        // delivered to the application side: pure duplicate.
        let mut start = offset;
        if start < self.expected {
            let dup = self.expected.min(end) - start;
            ing.duplicate += dup;
            note_dup(start, dup);
            start += dup;
        }
        if start >= end {
            return ing;
        }
        if start == self.expected {
            // A spanning in-order segment may cover ranges already held
            // for reassembly: those bytes were counted fresh when held
            // and are duplicates now (the readable prefix itself only
            // advances once either way).
            let mut held = 0u64;
            for (&o, &l) in self.ooo.range(..end) {
                if o + l > start {
                    let s = o.max(start);
                    let n = (o + l).min(end) - s;
                    held += n;
                    note_dup(s, n);
                }
            }
            ing.fresh += (end - start) - held;
            ing.duplicate += held;
            self.arrived += end - start;
            self.expected = end;
            self.drain_contiguous();
            return ing;
        }
        // Out of order: clip against ranges already held, then merge the
        // remainder in.
        let mut covered = 0u64;
        let mut merged_start = start;
        let mut merged_end = end;
        let keys: Vec<u64> = self
            .ooo
            .range(..end)
            .filter(|(&o, &l)| o + l >= start)
            .map(|(&o, _)| o)
            .collect();
        for o in keys {
            let l = self.ooo.remove(&o).expect("key just enumerated");
            let e = o + l;
            let overlap = e.min(end).saturating_sub(o.max(start));
            covered += overlap;
            note_dup(o.max(start), overlap);
            merged_start = merged_start.min(o);
            merged_end = merged_end.max(e);
        }
        ing.duplicate += covered;
        ing.fresh += (end - start) - covered;
        self.ooo.insert(merged_start, merged_end - merged_start);
        ing
    }

    /// Promotes held ranges that became contiguous with the high-water
    /// mark into the readable prefix.
    fn drain_contiguous(&mut self) {
        while let Some((&o, &l)) = self.ooo.first_key_value() {
            if o > self.expected {
                break;
            }
            self.ooo.remove(&o);
            let e = o + l;
            if e > self.expected {
                self.arrived += e - self.expected;
                self.expected = e;
            }
        }
    }

    /// Bytes the application could read right now.
    pub fn readable(&self) -> u64 {
        if self.coalesce_across_messages {
            self.arrived
        } else {
            match self.bounds.front() {
                Some(&rem) => self.arrived.min(rem),
                None => 0,
            }
        }
    }

    /// True when the *current* (front) message has fully arrived.
    pub fn front_message_complete(&self) -> bool {
        matches!(self.bounds.front(), Some(&rem) if self.arrived >= rem)
    }

    /// Application `recv()`: consumes everything readable.
    pub fn read(&mut self) -> ReadResult {
        let mut take = self.readable();
        if take == 0 {
            return ReadResult {
                bytes: 0,
                messages_completed: 0,
            };
        }
        self.arrived -= take;
        let mut completed = 0;
        let bytes = take;
        while take > 0 {
            let Some(front) = self.bounds.front_mut() else {
                break;
            };
            if take >= *front {
                take -= *front;
                self.bounds.pop_front();
                completed += 1;
            } else {
                *front -= take;
                take = 0;
            }
        }
        ReadResult {
            bytes,
            messages_completed: completed,
        }
    }

    /// Number of logical messages still in flight (partially arrived or
    /// unread).
    pub fn pending_messages(&self) -> usize {
        self.bounds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn quiet_params() -> WireParams {
        WireParams {
            latency: SimDur::from_micros(100),
            jitter: Dist::Constant(0.0),
            bandwidth_bps: 100_000_000,
            mss: 1448,
            loss: 0.0,
            rto: SimDur::from_millis(30),
        }
    }

    #[test]
    fn small_message_is_one_segment() {
        let mut w = Wire::new(quiet_params());
        let segs = w.transmit(SimTime::ZERO, 500, &mut rng());
        assert_eq!(segs.len(), 1);
        // 500 B at 100 Mbps = 40us tx + 100us latency.
        assert_eq!(segs[0].at, SimTime(140_000));
        assert_eq!(segs[0].bytes, 500);
    }

    #[test]
    fn large_message_segments_at_mss() {
        let mut w = Wire::new(quiet_params());
        let segs = w.transmit(SimTime::ZERO, 10_000, &mut rng());
        assert_eq!(segs.len(), 7); // ceil(10000/1448)
        assert_eq!(segs.iter().map(|s| s.bytes).sum::<u64>(), 10_000);
        // Arrivals strictly ordered.
        for pair in segs.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        assert_eq!(segs.last().unwrap().bytes, 10_000 - 6 * 1448);
    }

    #[test]
    fn bandwidth_decrease_slows_arrivals() {
        let fast = {
            let mut w = Wire::new(quiet_params());
            w.transmit(SimTime::ZERO, 10_000, &mut rng())
                .last()
                .unwrap()
                .at
        };
        let slow = {
            let mut p = quiet_params();
            p.bandwidth_bps = 10_000_000; // the EJB_Network fault
            let mut w = Wire::new(p);
            w.transmit(SimTime::ZERO, 10_000, &mut rng())
                .last()
                .unwrap()
                .at
        };
        assert!(slow.as_nanos() > 5 * fast.as_nanos());
    }

    #[test]
    fn back_to_back_messages_serialize() {
        let mut w = Wire::new(quiet_params());
        let a = w.transmit(SimTime::ZERO, 1448, &mut rng());
        let b = w.transmit(SimTime::ZERO, 1448, &mut rng());
        assert!(
            b[0].at > a[0].at,
            "second message must queue behind the first"
        );
    }

    #[test]
    fn transmitter_frees_up_over_time() {
        let mut w = Wire::new(quiet_params());
        let _ = w.transmit(SimTime::ZERO, 1448, &mut rng());
        // Much later, the wire is idle again: same relative timing.
        let later = SimTime(1_000_000_000);
        let b = w.transmit(later, 500, &mut rng());
        assert_eq!(b[0].at, SimTime(1_000_140_000));
    }

    #[test]
    fn recv_buffer_reads_within_message() {
        let mut rb = RecvBuffer::new();
        rb.push_message(1000);
        rb.on_arrival(600);
        assert_eq!(rb.readable(), 600);
        let r1 = rb.read();
        assert_eq!(r1.bytes, 600);
        assert_eq!(r1.messages_completed, 0);
        rb.on_arrival(400);
        let r2 = rb.read();
        assert_eq!(r2.bytes, 400);
        assert_eq!(r2.messages_completed, 1);
        assert_eq!(rb.pending_messages(), 0);
    }

    #[test]
    fn recv_does_not_cross_message_boundary() {
        let mut rb = RecvBuffer::new();
        rb.push_message(100);
        rb.push_message(200);
        rb.on_arrival(300); // both messages fully arrived
        let r1 = rb.read();
        assert_eq!(r1.bytes, 100);
        assert_eq!(r1.messages_completed, 1);
        let r2 = rb.read();
        assert_eq!(r2.bytes, 200);
        assert_eq!(r2.messages_completed, 1);
    }

    #[test]
    fn coalescing_mode_crosses_boundaries() {
        let mut rb = RecvBuffer::with_coalescing();
        rb.push_message(100);
        rb.push_message(200);
        rb.on_arrival(150);
        let r = rb.read();
        assert_eq!(r.bytes, 150);
        assert_eq!(r.messages_completed, 1); // 100 + 50 of the next
        assert_eq!(rb.pending_messages(), 1);
    }

    #[test]
    fn read_empty_returns_zero() {
        let mut rb = RecvBuffer::new();
        assert_eq!(rb.read().bytes, 0);
        rb.on_arrival(10); // bytes with no declared message: unreadable
        assert_eq!(rb.readable(), 0);
    }

    #[test]
    fn front_message_complete_tracks_arrivals() {
        let mut rb = RecvBuffer::new();
        rb.push_message(100);
        assert!(!rb.front_message_complete());
        rb.on_arrival(99);
        assert!(!rb.front_message_complete());
        rb.on_arrival(1);
        assert!(rb.front_message_complete());
    }

    #[test]
    fn segments_carry_message_offsets() {
        let mut w = Wire::new(quiet_params());
        let segs = w.transmit(SimTime::ZERO, 4_000, &mut rng());
        let offsets: Vec<u64> = segs.iter().map(|s| s.offset).collect();
        assert_eq!(offsets, vec![0, 1448, 2896]);
    }

    #[test]
    fn lossy_wire_delivers_every_byte_with_retransmit_lag() {
        let mut p = quiet_params();
        p.loss = 0.3;
        let mut w = Wire::new(p);
        let mut r = rng();
        for _ in 0..50 {
            let segs = w.transmit(SimTime::ZERO, 20_000, &mut r);
            // Every byte of the message is delivered at least once.
            let mut rb = RecvBuffer::new();
            rb.push_message(20_000);
            let mut dup = 0;
            for s in &segs {
                dup += rb.on_segment(s.offset, s.bytes).duplicate;
            }
            assert_eq!(rb.read().bytes, 20_000);
            // Duplicates only come from spurious retransmissions.
            let extra: u64 = segs.iter().map(|s| s.bytes).sum::<u64>() - 20_000;
            assert_eq!(dup, extra);
        }
    }

    #[test]
    fn lossy_wire_produces_late_and_duplicate_arrivals() {
        let mut p = quiet_params();
        p.loss = 0.2;
        let mut w = Wire::new(p);
        let mut r = rng();
        let mut late = 0u32;
        let mut dups = 0u32;
        for i in 0..200u64 {
            let now = SimTime(i * 1_000_000_000);
            let segs = w.transmit(now, 10_000, &mut r);
            // Reordering: a segment arriving after a later-offset one.
            late += segs.windows(2).filter(|p| p[0].at > p[1].at).count() as u32;
            let mut seen = std::collections::HashSet::new();
            dups += segs.iter().filter(|s| !seen.insert(s.offset)).count() as u32;
        }
        assert!(late > 0, "lossy wire must reorder deliveries");
        assert!(dups > 0, "lossy wire must duplicate byte ranges");
    }

    #[test]
    fn recv_buffer_reassembles_out_of_order_segments() {
        let mut rb = RecvBuffer::new();
        rb.push_message(300);
        // Middle segment arrives first: held, not readable.
        let i = rb.on_segment(100, 100);
        assert_eq!(
            i,
            SegmentIngest {
                fresh: 100,
                duplicate: 0
            }
        );
        assert_eq!(rb.readable(), 0);
        // Head arrives: both become readable.
        let i = rb.on_segment(0, 100);
        assert_eq!(i.fresh, 100);
        assert_eq!(rb.readable(), 200);
        // Tail completes the message.
        rb.on_segment(200, 100);
        let r = rb.read();
        assert_eq!(r.bytes, 300);
        assert_eq!(r.messages_completed, 1);
    }

    #[test]
    fn recv_buffer_counts_duplicates() {
        let mut rb = RecvBuffer::new();
        rb.push_message(400);
        rb.on_segment(0, 200);
        // Full duplicate of a delivered range.
        assert_eq!(
            rb.on_segment(0, 200),
            SegmentIngest {
                fresh: 0,
                duplicate: 200
            }
        );
        // Duplicate of a held out-of-order range.
        rb.on_segment(300, 100);
        assert_eq!(
            rb.on_segment(300, 100),
            SegmentIngest {
                fresh: 0,
                duplicate: 100
            }
        );
        // Partial overlap with the delivered prefix.
        assert_eq!(
            rb.on_segment(100, 150),
            SegmentIngest {
                fresh: 50,
                duplicate: 100
            }
        );
        rb.on_segment(250, 50);
        assert_eq!(rb.readable(), 400);
        assert_eq!(rb.read().messages_completed, 1);
    }

    #[test]
    fn spanning_in_order_segment_counts_held_overlap_as_duplicate() {
        let mut rb = RecvBuffer::new();
        rb.push_message(200);
        // Middle range held out of order: fresh once.
        assert_eq!(
            rb.on_segment(100, 100),
            SegmentIngest {
                fresh: 100,
                duplicate: 0
            }
        );
        // A spanning retransmission covers it from the contiguous edge:
        // only the head 100 bytes are new.
        assert_eq!(
            rb.on_segment(0, 200),
            SegmentIngest {
                fresh: 100,
                duplicate: 100
            }
        );
        assert_eq!(rb.readable(), 200);
        let r = rb.read();
        assert_eq!(r.bytes, 200);
        assert_eq!(r.messages_completed, 1);
    }

    #[test]
    fn on_segment_ranges_reports_duplicate_subranges() {
        let mut rb = RecvBuffer::new();
        rb.push_message(400);
        let mut dups = Vec::new();
        rb.on_segment_ranges(0, 200, &mut dups);
        assert!(dups.is_empty(), "fresh prefix reports no duplicates");
        // Duplicate of the delivered prefix.
        let ing = rb.on_segment_ranges(100, 100, &mut dups);
        assert_eq!(ing.duplicate, 100);
        assert_eq!(dups, vec![(100, 100)]);
        dups.clear();
        // Held out-of-order range, then a spanning arrival covering it:
        // only the held overlap is a duplicate, reported by range.
        rb.on_segment_ranges(300, 100, &mut dups);
        assert!(dups.is_empty());
        let ing = rb.on_segment_ranges(200, 200, &mut dups);
        assert_eq!(ing.fresh, 100);
        assert_eq!(ing.duplicate, 100);
        assert_eq!(dups, vec![(300, 100)]);
        assert_eq!(rb.read().bytes, 400);
    }

    #[test]
    fn on_arrival_remains_in_order_equivalent() {
        let mut a = RecvBuffer::new();
        let mut b = RecvBuffer::new();
        for rbuf in [&mut a, &mut b] {
            rbuf.push_message(100);
            rbuf.push_message(50);
        }
        a.on_arrival(100);
        a.on_arrival(50);
        b.on_segment(0, 100);
        b.on_segment(100, 50);
        assert_eq!(a.readable(), b.readable());
        assert_eq!(a.read(), b.read());
    }

    #[test]
    fn port_alloc_wraps() {
        let mut p = PortAlloc::new();
        let first = p.next_port();
        assert_eq!(first, 32_768);
        for _ in 0..(61_000 - 32_768) {
            p.next_port();
        }
        assert!(p.next_port() >= 32_768);
    }
}
