//! The discrete-event simulator: an event queue with deterministic
//! tie-breaking and a [`World`] trait implemented by the model.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDur, SimTime};

/// A model simulated by [`Simulator`].
///
/// The world receives each event together with the current time and a
/// [`Scheduler`] for enqueueing future events.
pub trait World {
    /// The event payload type.
    type Event;

    /// Handles one event.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first;
        // ties break on insertion order for determinism.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// Enqueues future events; handed to the world on every event.
pub struct Scheduler<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }
}

impl<E> Scheduler<E> {
    /// Schedules an event at an absolute time (clamped to now).
    pub fn at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Schedules an event after a delay.
    pub fn after(&mut self, delay: SimDur, event: E) {
        self.at(self.now + delay, event);
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }
}

/// Drives a [`World`] through its event queue.
pub struct Simulator<W: World> {
    /// The model under simulation.
    pub world: W,
    sched: Scheduler<W::Event>,
    events_processed: u64,
}

impl<W: World> Simulator<W> {
    /// Creates a simulator with an empty queue at time zero.
    pub fn new(world: W) -> Self {
        Simulator {
            world,
            sched: Scheduler::default(),
            events_processed: 0,
        }
    }

    /// Seeds initial events before running.
    pub fn scheduler(&mut self) -> &mut Scheduler<W::Event> {
        &mut self.sched
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Processes a single event; returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(s) = self.sched.heap.pop() else {
            return false;
        };
        debug_assert!(s.at >= self.sched.now, "time must not go backwards");
        self.sched.now = s.at;
        self.events_processed += 1;
        self.world.handle(s.at, s.event, &mut self.sched);
        true
    }

    /// Runs until the queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until simulated time exceeds `until` or the queue empties;
    /// the first event past the horizon is *not* processed.
    pub fn run_until(&mut self, until: SimTime) {
        loop {
            match self.sched.heap.peek() {
                Some(s) if s.at <= until => {
                    self.step();
                }
                _ => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Collector {
        seen: Vec<(u64, u32)>,
    }

    impl World for Collector {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
            self.seen.push((now.as_nanos(), ev));
            if ev == 1 {
                // Chain a follow-up event.
                sched.after(SimDur::from_nanos(10), 99);
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulator::new(Collector { seen: vec![] });
        sim.scheduler().at(SimTime(300), 3);
        sim.scheduler().at(SimTime(100), 1);
        sim.scheduler().at(SimTime(200), 2);
        sim.run();
        assert_eq!(
            sim.world.seen,
            vec![(100, 1), (110, 99), (200, 2), (300, 3)]
        );
        assert_eq!(sim.events_processed(), 4);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut sim = Simulator::new(Collector { seen: vec![] });
        sim.scheduler().at(SimTime(5), 10);
        sim.scheduler().at(SimTime(5), 20);
        sim.scheduler().at(SimTime(5), 30);
        sim.run();
        assert_eq!(sim.world.seen, vec![(5, 10), (5, 20), (5, 30)]);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = Simulator::new(Collector { seen: vec![] });
        sim.scheduler().at(SimTime(100), 2);
        sim.scheduler().at(SimTime(200), 3);
        sim.run_until(SimTime(150));
        assert_eq!(sim.world.seen.len(), 1);
        assert_eq!(sim.now(), SimTime(100));
        sim.run();
        assert_eq!(sim.world.seen.len(), 2);
    }

    #[test]
    fn past_events_clamp_to_now() {
        struct P;
        impl World for P {
            type Event = u8;
            fn handle(&mut self, now: SimTime, ev: u8, sched: &mut Scheduler<u8>) {
                if ev == 0 {
                    // Attempt to schedule in the past: clamped to now.
                    sched.at(SimTime(1), 1);
                    assert_eq!(now, SimTime(100));
                }
            }
        }
        let mut sim = Simulator::new(P);
        sim.scheduler().at(SimTime(100), 0);
        sim.run();
        assert_eq!(sim.events_processed(), 2);
    }
}
