//! Reproducible random distributions.
//!
//! Only `rand` is available offline (no `rand_distr`), so the classic
//! inverse-CDF / Box–Muller constructions are implemented here.

use rand::Rng;

/// A sampleable distribution of durations/sizes (in abstract units; the
/// caller decides whether values are nanoseconds, bytes, ...).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dist {
    /// Always the same value.
    Constant(f64),
    /// Uniform in `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
    },
    /// Exponential with the given mean.
    Exp {
        /// Mean of the distribution.
        mean: f64,
    },
    /// Log-normal parameterized by the *median* and sigma of the
    /// underlying normal (heavy-tailed service times).
    LogNormal {
        /// Median (= exp(mu)).
        median: f64,
        /// Sigma of the underlying normal.
        sigma: f64,
    },
    /// Bounded Pareto with shape `alpha` on `[lo, hi]` (bursty sizes).
    Pareto {
        /// Minimum value.
        lo: f64,
        /// Maximum value.
        hi: f64,
        /// Shape parameter (smaller = heavier tail).
        alpha: f64,
    },
}

impl Dist {
    /// Draws a sample (always ≥ 0).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let v = match *self {
            Dist::Constant(v) => v,
            Dist::Uniform { lo, hi } => {
                if hi <= lo {
                    lo
                } else {
                    rng.gen_range(lo..hi)
                }
            }
            Dist::Exp { mean } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                -mean * u.ln()
            }
            Dist::LogNormal { median, sigma } => {
                // Box–Muller.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                median * (sigma * z).exp()
            }
            Dist::Pareto { lo, hi, alpha } => {
                let u: f64 = rng.gen_range(0.0..1.0);
                let la = lo.powf(alpha);
                let ha = hi.powf(alpha);
                // Inverse CDF of the bounded Pareto: x such that
                // F(x) = (1 - la·x^-a) / (1 - la/ha) = u.
                ((ha - u * (ha - la)) / (la * ha)).powf(-1.0 / alpha)
            }
        };
        v.max(0.0)
    }

    /// The analytical mean, where tractable (used for sanity checks).
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Constant(v) => v,
            Dist::Uniform { lo, hi } => (lo + hi) / 2.0,
            Dist::Exp { mean } => mean,
            Dist::LogNormal { median, sigma } => median * (sigma * sigma / 2.0).exp(),
            Dist::Pareto { lo, hi, alpha } => {
                if (alpha - 1.0).abs() < 1e-9 {
                    (hi / lo).ln() * lo / (1.0 - lo / hi)
                } else {
                    let la = lo.powf(alpha);
                    let num = alpha * la / (alpha - 1.0)
                        * (1.0 / lo.powf(alpha - 1.0) - 1.0 / hi.powf(alpha - 1.0));
                    num / (1.0 - (lo / hi).powf(alpha))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical_mean(d: Dist, n: usize) -> f64 {
        let mut rng = StdRng::seed_from_u64(42);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        assert_eq!(empirical_mean(Dist::Constant(7.0), 10), 7.0);
    }

    #[test]
    fn uniform_mean_close() {
        let m = empirical_mean(Dist::Uniform { lo: 10.0, hi: 20.0 }, 20_000);
        assert!((m - 15.0).abs() < 0.2, "mean {m}");
    }

    #[test]
    fn exp_mean_close() {
        let m = empirical_mean(Dist::Exp { mean: 5.0 }, 50_000);
        assert!((m - 5.0).abs() < 0.2, "mean {m}");
    }

    #[test]
    fn lognormal_median_close() {
        let d = Dist::LogNormal {
            median: 10.0,
            sigma: 0.5,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<f64> = (0..20_001).map(|_| d.sample(&mut rng)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = v[10_000];
        assert!((med - 10.0).abs() < 0.5, "median {med}");
    }

    #[test]
    fn samples_are_deterministic_per_seed() {
        let d = Dist::Exp { mean: 3.0 };
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }

    #[test]
    fn samples_nonnegative() {
        let mut rng = StdRng::seed_from_u64(3);
        for d in [
            Dist::Exp { mean: 1.0 },
            Dist::LogNormal {
                median: 1.0,
                sigma: 2.0,
            },
            Dist::Uniform { lo: 0.0, hi: 1.0 },
            Dist::Pareto {
                lo: 1.0,
                hi: 100.0,
                alpha: 1.3,
            },
        ] {
            for _ in 0..1000 {
                assert!(d.sample(&mut rng) >= 0.0);
            }
        }
    }

    #[test]
    fn degenerate_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(Dist::Uniform { lo: 5.0, hi: 5.0 }.sample(&mut rng), 5.0);
    }

    #[test]
    fn pareto_bounded() {
        let d = Dist::Pareto {
            lo: 2.0,
            hi: 50.0,
            alpha: 1.5,
        };
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..5000 {
            let v = d.sample(&mut rng);
            assert!((2.0..=50.0).contains(&v), "v={v}");
        }
    }
}
