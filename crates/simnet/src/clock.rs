//! Per-node clocks with skew and drift.
//!
//! The tracing algorithm's headline property (§4.1) is that the sliding
//! window is *independent of clock skews*. The evaluation (§5.2) varies
//! skew from 1 ms to 500 ms; [`ClockModel`] reproduces that: each node
//! observes `local = true + offset + drift·true`.

use crate::time::SimTime;

/// A node's clock: constant offset plus linear drift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockModel {
    /// Constant offset in nanoseconds (may be negative).
    pub offset_ns: i64,
    /// Drift in parts per million (1.0 = 1 µs gained per second).
    pub drift_ppm: f64,
}

impl Default for ClockModel {
    fn default() -> Self {
        ClockModel {
            offset_ns: 0,
            drift_ppm: 0.0,
        }
    }
}

impl ClockModel {
    /// A perfectly synchronized clock.
    pub const fn synchronized() -> Self {
        ClockModel {
            offset_ns: 0,
            drift_ppm: 0.0,
        }
    }

    /// A clock with a constant skew.
    pub const fn with_offset_ns(offset_ns: i64) -> Self {
        ClockModel {
            offset_ns,
            drift_ppm: 0.0,
        }
    }

    /// A clock with a constant skew in milliseconds.
    pub const fn with_offset_ms(ms: i64) -> Self {
        ClockModel {
            offset_ns: ms * 1_000_000,
            drift_ppm: 0.0,
        }
    }

    /// Adds drift to the clock.
    pub fn and_drift_ppm(mut self, ppm: f64) -> Self {
        self.drift_ppm = ppm;
        self
    }

    /// Converts true simulation time to this node's local timestamp in
    /// nanoseconds. Local time is clamped at zero (a trace cannot carry
    /// negative timestamps); choose offsets small enough relative to the
    /// epoch base to avoid clamping in experiments.
    pub fn local_nanos(&self, t: SimTime) -> u64 {
        let drift = (t.as_nanos() as f64 * self.drift_ppm / 1e6) as i64;
        let local = t.as_nanos() as i64 + self.offset_ns + drift;
        local.max(0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronized_is_identity() {
        let c = ClockModel::synchronized();
        assert_eq!(c.local_nanos(SimTime(12345)), 12345);
    }

    #[test]
    fn offset_shifts() {
        let c = ClockModel::with_offset_ms(500);
        assert_eq!(c.local_nanos(SimTime(1_000)), 500_001_000);
        let back = ClockModel::with_offset_ns(-100);
        assert_eq!(back.local_nanos(SimTime(1_000)), 900);
    }

    #[test]
    fn negative_local_clamps_to_zero() {
        let c = ClockModel::with_offset_ms(-1);
        assert_eq!(c.local_nanos(SimTime(5)), 0);
    }

    #[test]
    fn drift_accumulates() {
        let c = ClockModel::synchronized().and_drift_ppm(100.0); // 100us/s
        assert_eq!(c.local_nanos(SimTime(1_000_000_000)), 1_000_100_000);
    }

    #[test]
    fn monotone_for_reasonable_drift() {
        let c = ClockModel::with_offset_ms(3).and_drift_ppm(-200.0);
        let mut prev = 0;
        for i in 0..1000 {
            let t = c.local_nanos(SimTime(i * 1_000_000));
            assert!(t >= prev);
            prev = t;
        }
    }
}
