//! FIFO-queued resources: CPU core pools, connector thread pools
//! (JBoss `MaxThreads`), and exclusive locks (the locked `items` table
//! of abnormal case 2).
//!
//! These are pure data structures: acquiring either succeeds
//! immediately or queues the caller's token; releasing hands the unit to
//! the next waiter, which the simulation world turns into an event.

use std::collections::VecDeque;

/// A counted resource with FIFO admission (CPU cores, worker threads).
#[derive(Debug, Clone)]
pub struct FifoResource<T> {
    capacity: usize,
    in_use: usize,
    waiters: VecDeque<T>,
    peak_queue: usize,
    total_waits: u64,
}

impl<T> FifoResource<T> {
    /// A resource with `capacity` units.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "resource capacity must be positive");
        FifoResource {
            capacity,
            in_use: 0,
            waiters: VecDeque::new(),
            peak_queue: 0,
            total_waits: 0,
        }
    }

    /// Total units.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Units currently held.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Waiters currently queued.
    pub fn queue_len(&self) -> usize {
        self.waiters.len()
    }

    /// High-water mark of the wait queue.
    pub fn peak_queue(&self) -> usize {
        self.peak_queue
    }

    /// How many acquisitions had to wait.
    pub fn total_waits(&self) -> u64 {
        self.total_waits
    }

    /// True when a unit is free *and* nobody is queued ahead.
    pub fn available(&self) -> bool {
        self.in_use < self.capacity && self.waiters.is_empty()
    }

    /// Tries to acquire a unit for `token`. Returns `true` when granted
    /// immediately; otherwise the token queues FIFO and will be returned
    /// by a future [`FifoResource::release`].
    pub fn acquire(&mut self, token: T) -> bool {
        if self.available() {
            self.in_use += 1;
            true
        } else {
            self.waiters.push_back(token);
            self.peak_queue = self.peak_queue.max(self.waiters.len());
            self.total_waits += 1;
            false
        }
    }

    /// Releases one unit; if a waiter is queued, the unit passes to it
    /// and its token is returned (the caller schedules its wake-up).
    ///
    /// # Panics
    ///
    /// Panics when nothing is held.
    pub fn release(&mut self) -> Option<T> {
        assert!(self.in_use > 0, "release without acquire");
        match self.waiters.pop_front() {
            Some(t) => Some(t), // unit transfers directly
            None => {
                self.in_use -= 1;
                None
            }
        }
    }

    /// Grows or shrinks capacity (reconfiguration experiments). When it
    /// grows, queued waiters are granted; their tokens are returned.
    pub fn resize(&mut self, capacity: usize) -> Vec<T> {
        assert!(capacity > 0, "resource capacity must be positive");
        self.capacity = capacity;
        let mut granted = Vec::new();
        while self.in_use < self.capacity {
            match self.waiters.pop_front() {
                Some(t) => {
                    self.in_use += 1;
                    granted.push(t);
                }
                None => break,
            }
        }
        granted
    }
}

/// An exclusive lock with FIFO waiters (capacity-1 resource with a
/// clearer name for table locks).
#[derive(Debug, Clone)]
pub struct Gate<T> {
    inner: FifoResource<T>,
}

impl<T> Default for Gate<T> {
    fn default() -> Self {
        Gate::new()
    }
}

impl<T> Gate<T> {
    /// An unlocked gate.
    pub fn new() -> Self {
        Gate {
            inner: FifoResource::new(1),
        }
    }

    /// True when unlocked with no queue.
    pub fn available(&self) -> bool {
        self.inner.available()
    }

    /// Tries to lock; queues FIFO otherwise.
    pub fn acquire(&mut self, token: T) -> bool {
        self.inner.acquire(token)
    }

    /// Unlocks; returns the next waiter's token if any.
    pub fn release(&mut self) -> Option<T> {
        self.inner.release()
    }

    /// Current wait-queue length.
    pub fn queue_len(&self) -> usize {
        self.inner.queue_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_until_capacity() {
        let mut r: FifoResource<u32> = FifoResource::new(2);
        assert!(r.acquire(1));
        assert!(r.acquire(2));
        assert!(!r.acquire(3));
        assert_eq!(r.in_use(), 2);
        assert_eq!(r.queue_len(), 1);
    }

    #[test]
    fn release_hands_to_fifo_waiter() {
        let mut r: FifoResource<u32> = FifoResource::new(1);
        assert!(r.acquire(1));
        assert!(!r.acquire(2));
        assert!(!r.acquire(3));
        assert_eq!(r.release(), Some(2));
        assert_eq!(r.release(), Some(3));
        assert_eq!(r.release(), None);
        assert_eq!(r.in_use(), 0);
    }

    #[test]
    fn transfer_keeps_unit_accounted() {
        // When a unit transfers to a waiter, in_use stays constant.
        let mut r: FifoResource<u32> = FifoResource::new(1);
        r.acquire(1);
        r.acquire(2);
        assert_eq!(r.in_use(), 1);
        assert_eq!(r.release(), Some(2));
        assert_eq!(r.in_use(), 1);
        assert_eq!(r.release(), None);
        assert_eq!(r.in_use(), 0);
    }

    #[test]
    fn stats_track_waits() {
        let mut r: FifoResource<u32> = FifoResource::new(1);
        r.acquire(1);
        r.acquire(2);
        r.acquire(3);
        assert_eq!(r.total_waits(), 2);
        assert_eq!(r.peak_queue(), 2);
    }

    #[test]
    #[should_panic(expected = "release without acquire")]
    fn release_without_acquire_panics() {
        let mut r: FifoResource<u32> = FifoResource::new(1);
        let _ = r.release();
    }

    #[test]
    fn resize_grants_waiters() {
        let mut r: FifoResource<u32> = FifoResource::new(1);
        r.acquire(1);
        r.acquire(2);
        r.acquire(3);
        let granted = r.resize(3);
        assert_eq!(granted, vec![2, 3]);
        assert_eq!(r.in_use(), 3);
    }

    #[test]
    fn gate_serializes() {
        let mut g: Gate<&str> = Gate::new();
        assert!(g.acquire("a"));
        assert!(!g.acquire("b"));
        assert_eq!(g.queue_len(), 1);
        assert_eq!(g.release(), Some("b"));
        assert_eq!(g.release(), None);
        assert!(g.available());
    }
}
