//! Bottleneck hunting: the §5.4.1 MaxThreads misconfiguration story.
//!
//! ```sh
//! cargo run --release --example bottleneck_hunt
//! ```
//!
//! Reproduces the paper's debugging session: throughput degrades as
//! clients grow, CPU looks fine everywhere, and traditional metrics
//! don't explain why. PreciseTracer's latency percentages point at the
//! httpd→java interaction; raising the JBoss `MaxThreads` from 40 to
//! 250 fixes it.

use precisetracer::prelude::*;

fn run_at(clients: usize, max_threads: usize) -> (f64, f64, BreakdownReport) {
    let mut cfg = rubis::ExperimentConfig::quick(clients, 30);
    cfg.spec = cfg.spec.with_max_threads(max_threads);
    let out = rubis::run(cfg);
    let tp = out.service.throughput();
    let rt_ms = out.service.rt_mean().as_nanos() as f64 / 1e6;
    let (corr, acc) = out.correlate(Nanos::from_millis(10)).expect("config");
    assert!(acc.is_perfect(), "tracing accuracy regression: {acc:?}");
    let breakdown = BreakdownReport::dominant(&corr.cags).expect("pattern");
    (tp, rt_ms, breakdown)
}

fn main() {
    println!("== symptom: throughput stalls, response time grows (MaxThreads=40) ==");
    let mut baseline: Option<BreakdownReport> = None;
    let mut suspect: Option<BreakdownReport> = None;
    for clients in [200usize, 500, 800] {
        let (tp, rt, b) = run_at(clients, 40);
        println!("  {clients:>4} clients: {tp:>6.1} req/s, mean RT {rt:>7.1} ms");
        if clients == 200 {
            baseline = Some(b);
        } else if clients == 800 {
            suspect = Some(b);
        }
    }
    let baseline = baseline.expect("ran");
    let suspect = suspect.expect("ran");

    println!("\n== latency percentages, 200 vs 800 clients ==");
    let diff = DiffReport::between(&baseline, &suspect);
    print!("{}", diff.format_table());

    println!("== automatic localization ==");
    match Diagnosis::localize(&diff, 10.0) {
        Some(d) => {
            println!("  trigger:  {} ({:+.1} points)", d.trigger, d.delta);
            println!("  suspect:  {}", d.suspect);
            println!("  because:  {}", d.explanation);
        }
        None => println!("  nothing significant found"),
    }

    println!("\n== fix: MaxThreads=250 (the paper's remedy) ==");
    for clients in [500usize, 800] {
        let (tp40, rt40, _) = run_at(clients, 40);
        let (tp250, rt250, _) = run_at(clients, 250);
        println!(
            "  {clients:>4} clients: TP {tp40:>6.1} -> {tp250:>6.1} req/s, RT {rt40:>7.1} -> {rt250:>7.1} ms"
        );
    }
}
