//! Precise vs probabilistic black-box tracing (related work, §6.1).
//!
//! ```sh
//! cargo run --release --example baseline_shootout
//! ```
//!
//! Runs the same TCP_TRACE log through three analyzers:
//! * **PreciseTracer** — per-request causal paths, exact;
//! * **WAP5-style nesting** — per-process most-recent heuristic;
//! * **Project5-style convolution** — aggregate per-hop delay only.
//!
//! As concurrency rises, nesting's path accuracy collapses while
//! PreciseTracer stays exact; convolution never produces paths at all
//! but still estimates hop delays.

use precisetracer::baselines::{estimate_delay, ConvolutionConfig};
use precisetracer::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>8} {:>10} {:>14} {:>14}",
        "clients", "requests", "precise", "wap5-nesting"
    );
    for clients in [5usize, 50, 150, 400] {
        let out = rubis::run(rubis::ExperimentConfig::quick(clients, 20));
        let (_, precise) = out.correlate(Nanos::from_millis(10))?;
        let inferred = infer_paths(&out.records, &out.access_spec(), &NestingConfig::default());
        let truth_sets: Vec<Vec<u64>> = out
            .truth
            .requests()
            .filter(|r| r.completed.is_some() && !r.records.is_empty())
            .map(|r| {
                let mut v = r.records.clone();
                v.sort_unstable();
                v
            })
            .collect();
        let paths: Vec<Vec<u64>> = inferred.into_iter().map(|p| p.tags).collect();
        let nest = evaluate_baseline(&paths, &truth_sets);
        println!(
            "{:>8} {:>10} {:>13.1}% {:>13.1}%",
            clients,
            precise.logged_requests,
            precise.accuracy() * 100.0,
            nest.accuracy() * 100.0
        );
    }

    // Project5-style convolution: estimate the httpd→java hop delay from
    // the message streams alone and compare with the CAG-measured truth.
    let out = rubis::run(rubis::ExperimentConfig::quick(100, 20));
    let (corr, _) = out.correlate(Nanos::from_millis(10))?;
    let sends: Vec<u64> = out
        .records
        .iter()
        .filter(|r| &*r.hostname == "web1" && r.dst.port == 8009)
        .map(|r| r.ts.as_nanos())
        .collect();
    let recvs: Vec<u64> = out
        .records
        .iter()
        .filter(|r| &*r.hostname == "app1" && r.dst.port == 8009)
        .map(|r| r.ts.as_nanos())
        .collect();
    let est = estimate_delay(&sends, &recvs, &ConvolutionConfig::default());
    // Ground truth from the precise CAGs: mean httpd2java edge latency.
    let breakdown = BreakdownReport::dominant(&corr.cags).expect("patterns");
    let true_hop = breakdown
        .components
        .get(&Component::new("httpd", "java"))
        .copied()
        .unwrap_or(Nanos::ZERO);
    println!("\nProject5-style convolution on the httpd->java hop:");
    println!("  estimated delay: {:?} ms", est.map(|ns| ns as f64 / 1e6));
    println!(
        "  CAG-measured mean: {:.1} ms",
        true_hop.as_nanos() as f64 / 1e6
    );
    println!("  (convolution yields one aggregate number; no per-request paths, no patterns)");
    Ok(())
}
