//! Noise tolerance: tracing a service while unrelated traffic hammers
//! the same machines (§4.3, §5.3.3).
//!
//! ```sh
//! cargo run --release --example noise_storm
//! ```
//!
//! Two kinds of noise coexist with RUBiS:
//! * ssh/rlogin chatter on the web node — filterable by program name
//!   (the paper's attribute filters);
//! * an untraced MySQL client hammering the shared database — same
//!   program (`mysqld`), same port, only removable by `is_noise`.
//!
//! The example shows that accuracy stays at 100% either way, and what
//! the noise costs in correlation time.

use precisetracer::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let clients = 100;
    let mut cfg = rubis::ExperimentConfig::quick(clients, 30);
    cfg.noise = rubis::NoiseSpec {
        ssh_msgs_per_sec: 60.0,
        mysql_msgs_per_sec: 400.0,
    };
    println!("simulating {clients} clients plus noise generators...");
    let out = rubis::run(cfg);
    println!(
        "  {} requests, {} probe records ({} of them noise)",
        out.service.completed,
        out.records.len(),
        out.truth.noise_records()
    );

    // Correlate with is_noise alone (no attribute filters).
    let window = Nanos::from_millis(2);
    let t = Instant::now();
    let (plain, acc) = out.correlate(window)?;
    let plain_time = t.elapsed();
    println!("\nwithout attribute filters:");
    println!(
        "  accuracy {:.1}%  (is_noise discarded {} activities)",
        acc.accuracy() * 100.0,
        plain.metrics.ranker.noise_discards
    );
    println!("  correlation time {plain_time:?}");
    assert!(acc.is_perfect(), "{acc:?}");

    // Now add the paper's attribute filter for sshd; mysql noise still
    // needs is_noise because it shares the database program.
    let cfg2 = out
        .correlator_config(window)
        .with_filters(FilterSet::new().drop_program("sshd"));
    let t = Instant::now();
    let filtered = Pipeline::new(cfg2.into())?.run(Source::records(out.records.clone()))?;
    let filtered_time = t.elapsed();
    let acc2 = out.truth.evaluate(&filtered.cags);
    println!("\nwith `drop_program(\"sshd\")` attribute filter:");
    println!(
        "  accuracy {:.1}%  (filtered {} records up front, is_noise discarded {})",
        acc2.accuracy() * 100.0,
        filtered.metrics.filtered_out,
        filtered.metrics.ranker.noise_discards
    );
    println!("  correlation time {filtered_time:?}");
    assert!(acc2.is_perfect(), "{acc2:?}");

    // Show a couple of discarded noise activities for flavor.
    println!("\nsample is_noise victims:");
    for a in plain.noise_samples.iter().take(4) {
        println!("  {a}");
    }
    Ok(())
}
