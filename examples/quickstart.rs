//! Quickstart: trace a small simulated RUBiS session end-to-end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Runs 100 emulated clients against the three-tier service, correlates
//! the TCP_TRACE log into component activity graphs, verifies path
//! accuracy against ground truth, and prints the latency breakdown of
//! the dominant causal path pattern.

use precisetracer::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Simulate a session: 100 clients, ~40s steady state.
    let cfg = rubis::ExperimentConfig::quick(100, 40);
    println!(
        "simulating {} clients, {} mix, session {}...",
        cfg.clients,
        cfg.mix.name,
        cfg.phases.total()
    );
    let out = rubis::run(cfg);
    println!(
        "  {} requests completed, {} probe records, {} sim events",
        out.service.completed,
        out.records.len(),
        out.sim_events
    );

    // 2. Correlate with a 10ms sliding window.
    let (corr, accuracy) = out.correlate(Nanos::from_millis(10))?;
    println!(
        "  correlated {} causal paths ({} unfinished), accuracy {:.2}% ({} requests)",
        corr.cags.len(),
        corr.unfinished.len(),
        accuracy.accuracy() * 100.0,
        accuracy.logged_requests
    );
    println!("  correlator: {}", corr.metrics.summary());

    // 3. Pattern analysis: the averaged causal path of the most frequent
    //    request class, with per-component latency percentages (Fig. 15).
    let mut agg = PatternAggregator::new();
    agg.add_all(&corr.cags);
    println!("\n{} causal path patterns:", agg.len());
    for path in agg.average_paths().iter().take(5) {
        println!(
            "  pattern {}: {} requests, mean total {}",
            path.key, path.count, path.mean_total
        );
    }
    let dominant = BreakdownReport::dominant(&corr.cags).expect("at least one pattern");
    println!("\nlatency percentages of the dominant pattern:");
    print!("{}", dominant.format_table());

    // 4. Render one CAG as Graphviz DOT (paste into `dot -Tsvg`).
    if let Some(cag) = corr.cags.first() {
        let dot = precisetracer::tracer::dot::cag_to_dot(cag);
        println!(
            "\nfirst CAG in DOT format ({} vertices):",
            cag.vertices.len()
        );
        println!("{}", &dot[..dot.len().min(400)]);
        println!("... (truncated)");
    }
    Ok(())
}
