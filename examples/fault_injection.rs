//! Fault injection and localization: the §5.4.2 abnormal cases.
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```
//!
//! Injects the paper's three performance problems — an EJB delay in the
//! second tier, a locked `items` table in the database, and a degraded
//! 10 Mbps NIC on the JBoss node — then localizes each one purely from
//! changes in the latency percentages of components (Fig. 17).

use precisetracer::prelude::*;

fn breakdown_with(faults: Vec<Fault>) -> BreakdownReport {
    let mut cfg = rubis::ExperimentConfig::quick(100, 30);
    for f in faults {
        cfg.spec = cfg.spec.with_fault(f);
    }
    let out = rubis::run(cfg);
    let (corr, acc) = out.correlate(Nanos::from_millis(10)).expect("config");
    assert!(acc.is_perfect(), "accuracy regression: {acc:?}");
    BreakdownReport::dominant(&corr.cags).expect("pattern")
}

fn main() {
    let normal = breakdown_with(vec![]);
    println!("== normal case ==");
    print!("{}", normal.format_table());

    let cases: Vec<(&str, Fault)> = vec![
        (
            "abnormal 1: EJB_Delay (random delay injected in tier 2)",
            Fault::EjbDelay {
                delay: Dist::Exp { mean: 60e6 },
            },
        ),
        (
            "abnormal 2: DataBase_Lock (items table locked)",
            Fault::DbLock {
                hold: Dist::Exp { mean: 5e6 },
            },
        ),
        (
            "abnormal 3: EJB_Network (JBoss NIC at 10 Mbps)",
            Fault::AppNetDegrade { bps: 10_000_000 },
        ),
    ];
    for (name, fault) in cases {
        println!("\n== {name} ==");
        let abnormal = breakdown_with(vec![fault]);
        let diff = DiffReport::between(&normal, &abnormal);
        // Show the three biggest movers.
        for r in diff.rows.iter().take(3) {
            println!(
                "  {:<18} {:>5.1}% -> {:>5.1}%  ({:+.1})",
                r.component.to_string(),
                r.before_pct,
                r.after_pct,
                r.delta
            );
        }
        match Diagnosis::localize(&diff, 6.0) {
            Some(d) => println!("  diagnosis: {} — {}", d.suspect, d.explanation),
            None => println!("  diagnosis: no significant change"),
        }
    }
}
