//! `pt` — the PreciseTracer command-line tool.
//!
//! Mirrors the workflow of the paper's tool on real or simulated
//! TCP_TRACE logs:
//!
//! ```text
//! pt simulate --clients 100 --seconds 30 [--noise] [--seed N] --out trace.log
//! pt correlate trace.log --port 80 --internal 10.0.0.1,10.0.0.2,10.0.0.3 [--window-ms 10]
//! pt patterns  trace.log --port 80 --internal ... [--dot pattern.dot]
//! pt diff      normal.log abnormal.log --port 80 --internal ...
//! ```
//!
//! `simulate` writes a log from the built-in RUBiS model; the other
//! commands work on any log in the TCP_TRACE text format, including
//! ones captured by a real SystemTap probe.

use std::net::Ipv4Addr;
use std::process::ExitCode;

use precisetracer::prelude::*;
use precisetracer::tracer::dot::average_path_to_dot;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "simulate" => simulate(rest),
        "correlate" => correlate_cmd(rest),
        "patterns" => patterns_cmd(rest),
        "diff" => diff_cmd(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pt: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
pt — precise request tracing for multi-tier services of black boxes

USAGE:
  pt simulate  --clients N [--seconds S] [--seed N] [--noise] [--skew-ms N] --out FILE
  pt correlate FILE --port P --internal IP[,IP...] [CORRELATION OPTIONS]
  pt patterns  FILE --port P --internal IP[,IP...] [CORRELATION OPTIONS] [--dot FILE]
  pt diff      BASELINE_FILE CURRENT_FILE --port P --internal IP[,IP...] [CORRELATION OPTIONS]

CORRELATION OPTIONS:
  --window-ms W        static sliding window in milliseconds (default 10)
  --adaptive-window    derive the window online from per-channel latency
                       quantiles (p99 x 4, clamped to [1ms, 10s]);
                       overrides --window-ms
  --memory-budget B    resident-memory budget in bytes (suffixes k/m/g);
                       stalest unfinished paths are evicted beyond it

The log format is the paper's TCP_TRACE text format:
  timestamp hostname program pid tid SEND|RECEIVE sip:sport-dip:dport size";

/// Pulls `--name value` out of an argument list.
fn opt(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn positional(args: &[String], n: usize) -> Option<&String> {
    args.iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--")
                && (*i == 0 || !args[i - 1].starts_with("--") || flag_like(&args[i - 1]))
        })
        .map(|(_, a)| a)
        .nth(n)
}

fn flag_like(a: &str) -> bool {
    matches!(a, "--noise" | "--adaptive-window")
}

fn access_from(args: &[String]) -> Result<AccessPointSpec, String> {
    let port: u16 = opt(args, "--port")
        .ok_or("missing --port")?
        .parse()
        .map_err(|_| "bad --port")?;
    let internal = opt(args, "--internal").ok_or("missing --internal")?;
    let ips: Result<Vec<Ipv4Addr>, _> = internal.split(',').map(str::parse).collect();
    let ips = ips.map_err(|_| "bad --internal list")?;
    Ok(AccessPointSpec::new([port], ips))
}

fn window_from(args: &[String]) -> Result<Nanos, String> {
    let ms: u64 = opt(args, "--window-ms")
        .unwrap_or_else(|| "10".into())
        .parse()
        .map_err(|_| "bad --window-ms")?;
    Ok(Nanos::from_millis(ms))
}

/// Parses a byte count with optional k/m/g suffix (powers of 1024).
fn parse_bytes(s: &str) -> Result<usize, String> {
    let s = s.trim().to_ascii_lowercase();
    let (digits, mult) = match s.strip_suffix(['k', 'm', 'g']) {
        Some(d) => (
            d,
            match s.as_bytes()[s.len() - 1] {
                b'k' => 1usize << 10,
                b'm' => 1 << 20,
                _ => 1 << 30,
            },
        ),
        None => (s.as_str(), 1),
    };
    digits
        .parse::<usize>()
        .ok()
        .and_then(|n| n.checked_mul(mult))
        .ok_or_else(|| format!("bad --memory-budget {s:?}"))
}

fn load(path: &str) -> Result<Vec<RawRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_log(&text).map_err(|e| format!("{path}: {e}"))
}

fn correlate_file(
    path: &str,
    args: &[String],
) -> Result<(CorrelationOutput, AccessPointSpec), String> {
    let access = access_from(args)?;
    let window = window_from(args)?;
    let records = load(path)?;
    let mut config = CorrelatorConfig::new(access.clone()).with_window(window);
    if flag(args, "--adaptive-window") {
        config = config.with_adaptive_window();
    }
    if let Some(budget) = opt(args, "--memory-budget") {
        config = config.with_memory_budget(parse_bytes(&budget)?);
    }
    let out = Correlator::new(config)
        .correlate(records)
        .map_err(|e| e.to_string())?;
    Ok((out, access))
}

fn simulate(args: &[String]) -> Result<(), String> {
    let clients: usize = opt(args, "--clients")
        .ok_or("missing --clients")?
        .parse()
        .map_err(|_| "bad --clients")?;
    let seconds: u64 = opt(args, "--seconds")
        .unwrap_or_else(|| "30".into())
        .parse()
        .map_err(|_| "bad --seconds")?;
    let out_path = opt(args, "--out").ok_or("missing --out")?;
    let mut cfg = rubis::ExperimentConfig::quick(clients, seconds);
    if let Some(seed) = opt(args, "--seed") {
        cfg.seed = seed.parse().map_err(|_| "bad --seed")?;
    }
    if let Some(skew) = opt(args, "--skew-ms") {
        cfg.spec = cfg
            .spec
            .with_skew_ms(skew.parse().map_err(|_| "bad --skew-ms")?);
    }
    if flag(args, "--noise") {
        cfg.noise = rubis::NoiseSpec {
            ssh_msgs_per_sec: 40.0,
            mysql_msgs_per_sec: 150.0,
        };
    }
    let out = rubis::run(cfg);
    let mut text = String::new();
    for r in &out.records {
        text.push_str(&r.to_string());
        text.push('\n');
    }
    std::fs::write(&out_path, text).map_err(|e| format!("{out_path}: {e}"))?;
    println!(
        "wrote {} records to {out_path} ({} requests completed, frontend {}:{}, internal {},{},{})",
        out.records.len(),
        out.service.completed,
        out.spec.web.ip,
        out.spec.web.port,
        out.spec.web.ip,
        out.spec.app.ip,
        out.spec.db.ip,
    );
    Ok(())
}

fn correlate_cmd(args: &[String]) -> Result<(), String> {
    let path = positional(args, 0).ok_or("missing log file")?;
    let (out, _) = correlate_file(path, args)?;
    println!(
        "correlated {} causal paths ({} deformed/unfinished)",
        out.cags.len(),
        out.unfinished.len()
    );
    println!("{}", out.metrics.summary());
    if out.metrics.ranker.rtt_samples > 0 {
        println!(
            "adaptive window: {} updates over {} rtt samples",
            out.metrics.ranker.window_updates, out.metrics.ranker.rtt_samples
        );
    }
    if out.metrics.engine.budget_evicted_cags > 0 {
        println!(
            "memory budget: evicted {} stale unfinished paths ({} vertices)",
            out.metrics.engine.budget_evicted_cags, out.metrics.engine.budget_evicted_vertices
        );
    }
    if !out.noise_samples.is_empty() {
        println!("sample noise discards:");
        for a in out.noise_samples.iter().take(5) {
            println!("  {a}");
        }
    }
    let latencies: Vec<f64> = out
        .cags
        .iter()
        .filter_map(|c| c.total_latency())
        .map(|n| n.as_nanos() as f64 / 1e6)
        .collect();
    if !latencies.is_empty() {
        let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
        println!(
            "mean request latency: {mean:.2} ms over {} paths",
            latencies.len()
        );
    }
    Ok(())
}

fn patterns_cmd(args: &[String]) -> Result<(), String> {
    let path = positional(args, 0).ok_or("missing log file")?;
    let (out, _) = correlate_file(path, args)?;
    let agg = PatternAggregator::from_cags(&out.cags);
    println!("{} patterns over {} paths:", agg.len(), out.cags.len());
    for p in agg.average_paths() {
        println!(
            "\npattern {} — {} requests, mean total {}",
            p.key, p.count, p.mean_total
        );
        for (c, pct) in &p.percentages {
            println!("  {:<22} {:>6.1}%", c.to_string(), pct);
        }
    }
    if let Some(dot_path) = opt(args, "--dot") {
        let paths = agg.average_paths();
        let dom = paths.first().ok_or("no pattern to render")?;
        std::fs::write(&dot_path, average_path_to_dot(dom))
            .map_err(|e| format!("{dot_path}: {e}"))?;
        println!("\nwrote dominant average path to {dot_path}");
    }
    Ok(())
}

fn diff_cmd(args: &[String]) -> Result<(), String> {
    let base_path = positional(args, 0).ok_or("missing baseline log")?;
    let cur_path = positional(args, 1).ok_or("missing current log")?;
    let (base, _) = correlate_file(base_path, args)?;
    let (cur, _) = correlate_file(cur_path, args)?;
    let b = BreakdownReport::dominant(&base.cags).ok_or("no patterns in baseline")?;
    let c = BreakdownReport::dominant(&cur.cags).ok_or("no patterns in current")?;
    let diff = DiffReport::between(&b, &c);
    print!("{}", diff.format_table());
    match Diagnosis::localize(&diff, 8.0) {
        Some(d) => println!("\ndiagnosis: {} — {}", d.suspect, d.explanation),
        None => println!("\ndiagnosis: no significant change"),
    }
    Ok(())
}
