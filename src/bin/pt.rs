//! `pt` — the PreciseTracer command-line tool.
//!
//! Mirrors the workflow of the paper's tool on real or simulated
//! TCP_TRACE logs:
//!
//! ```text
//! pt simulate --clients 100 --seconds 30 [--noise] [--seed N] --out trace.log
//! pt correlate trace.log --port 80 --internal 10.0.0.1,10.0.0.2,10.0.0.3 [--window-ms 10]
//! pt patterns  trace.log --port 80 --internal ... [--dot pattern.dot]
//! pt diff      normal.log abnormal.log --port 80 --internal ...
//! pt convert   trace.log trace.ptbin      (and back: pt convert trace.ptbin out.log)
//! ```
//!
//! `simulate` writes a log from the built-in RUBiS model; the other
//! commands work on any log in the TCP_TRACE text format, including
//! ones captured by a real SystemTap probe. `convert` translates
//! losslessly between the text format and the PTBIN binary format
//! (direction is sniffed from the input's magic bytes); `correlate`,
//! `patterns` and `diff` accept either form transparently.

use std::net::Ipv4Addr;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};

use precisetracer::prelude::*;
use precisetracer::tracer::binfmt;
use precisetracer::tracer::dot::average_path_to_dot;
use precisetracer::tracer::serve::{
    ServeConfig, ServeKpi, ServeSink, Server, ShedPolicy, SourceKind, SourceSpec,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "simulate" => simulate(rest),
        "correlate" => correlate_cmd(rest),
        "patterns" => patterns_cmd(rest),
        "diff" => diff_cmd(rest),
        "convert" => convert_cmd(rest),
        "serve" => serve_cmd(rest),
        "router" => router_cmd(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pt: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
pt — precise request tracing for multi-tier services of black boxes

USAGE:
  pt simulate  --clients N [--seconds S] [--seed N] [--noise] [--skew-ms N]
               [--web-replicas N] [--app-replicas N] [--db-replicas N]
               [--lb-policy rr|least-conn] [--pool N] [--loss P]
               [--capture-drop P] [--mix browse|bulk|default] --out FILE
  pt correlate FILE --port P --internal IP[,IP...] [CORRELATION OPTIONS]
  pt patterns  FILE --port P --internal IP[,IP...] [CORRELATION OPTIONS] [--dot FILE]
  pt diff      BASELINE_FILE CURRENT_FILE --port P --internal IP[,IP...] [CORRELATION OPTIONS]
  pt convert   IN_FILE OUT_FILE [--ingest-threads N]
  pt serve     SOURCE [SOURCE...] --port P --internal IP[,IP...] [SERVE OPTIONS]
  pt router    --stdio | --listen HOST:PORT

SIMULATION OPTIONS:
  --web-replicas N     web frontends behind the client load balancer
  --app-replicas N     JBoss replicas behind the web tier's balancer
  --db-replicas N      MySQL replicas behind the app tier's balancer
  --lb-policy P        rr (round-robin, default) or least-conn, applied
                       to every replicated tier
  --pool N             multiplex backend requests over N persistent
                       web->app connections shared across httpd workers
  --loss P             per-segment loss probability (TCP retransmit with
                       duplicate byte ranges; sniffer marks them retrans)
  --capture-drop P     switch to the sniffer-based TCP_TRACE v2 capture
                       lane (seq= stream offsets on every record,
                       per-message receive reassembly) and miss each
                       wire segment with probability P (0 = lossless
                       v2 capture)
  --mix NAME           workload mix: browse (read-only), bulk (large
                       multi-segment messages, stresses partial-capture
                       reassembly) or default (~15% writes)

CORRELATION OPTIONS:
  --window-ms W        static sliding window in milliseconds (default 10)
  --adaptive-window    derive the window online from per-channel latency
                       quantiles (p99 x 4, clamped to [1ms, 10s]);
                       overrides --window-ms
  --memory-budget B    resident-memory budget in bytes (suffixes k/m/g);
                       cold unfinished paths, orphan chains and dedup
                       state are spilled to disk beyond it and faulted
                       back on touch — output stays byte-identical to
                       an unbounded run
  --spill-dir DIR      directory for the spill file (default: the
                       system temp dir); the file is unlinked when the
                       run ends
  --shed-on-budget     restore the old budget policy: evict the stalest
                       unfinished paths outright instead of spilling
                       them (cheaper, but sheds recall)
  --shards N           correlate through the sharded parallel pipeline
                       with N worker threads (0 = one per CPU core);
                       output is in canonical root order, identical for
                       every shard count (unless --max-seal-lag is set)
  --max-seal-lag N     force-seal finished paths after N further
                       candidates so streaming emission meets an SLO
                       even under keep-alive lulls; with --shards the
                       bound is per-shard, so results may vary with the
                       shard count (still deterministic for a fixed N)
  --ingest-threads N   parse the log with N parallel chunk scanners
                       (0 = one per CPU core, default 1); output is
                       byte-identical to single-threaded parsing in
                       every mode — the option only changes speed
  --routers N          correlate through the distributed pipeline: N
                       router processes, each hosting a block of shard
                       workers; output is byte-identical to --shards
                       with the same total worker count. Without
                       --router-addr the routers are spawned children
                       of this binary (socketpair transport)
  --workers-per-router N
                       shard workers per router process (default 1, so
                       --routers N matches --shards N)
  --router-addr A,B,.. connect to already-running `pt router --listen`
                       peers over TCP instead of spawning children;
                       one host:port per router, in router order
  --orphan-parity      with --shards, ship orphan-chain records (noise
                       chatter no session owns) to the workers instead
                       of dropping them reader-side; the output is
                       identical either way, only engine-level counters
                       differ
  --stats              (correlate) additionally print the ingest dedup
                       counters: retrans_dropped, seq_dedup_ranges and
                       v2_records — v1 marker vs v2 range behavior at
                       a glance

SERVE OPTIONS:
  --format F           auto (default: sniff PTBIN magic per source),
                       text, or ptbin — applies to every source
  --idle-end-ms N      a file source counts as ended after N ms of no
                       growth (0 = follow forever, the default; FIFO
                       sources always end at writer hang-up)
  --shed P             block (default: lossless, tailers wait for the
                       correlator) or drop (drop the newest decoded
                       batch under sustained queue pressure, counted)
  --queue N            bounded queue depth in decoded batches (default 64)
  --kpi-every N        print a KPI line every N ingested records
                       (default 50000; 0 = only the final stats line)
  --poll-ms N          tail poll cadence for quiet files (default 20)
  --print-paths        print one line per sealed causal path
  plus the correlation options --window-ms, --adaptive-window,
  --memory-budget, --spill-dir, --shed-on-budget, --shards and
  --max-seal-lag. Without --shards the
  daemon runs the streaming engine and emits each path as it seals;
  with --shards it correlates online but emits paths at the final
  drain (the merge is global). On SIGINT/SIGTERM the daemon stops
  tailing, drains what is sealable, prints the final stats line and
  exits 0.

Flags may appear before or after positional arguments; unknown flags
are rejected. The log format is the paper's TCP_TRACE text format:
  timestamp hostname program pid tid SEND|RECEIVE sip:sport-dip:dport size

`convert` translates between TCP_TRACE text and the PTBIN binary
format, both directions, sniffing the direction from IN_FILE's magic
bytes; the analysis commands accept either format transparently.";

/// A uniformly parsed argument list: positionals in order, `--name
/// value` options, and boolean switches — position-independent, with
/// unknown flags rejected up front.
struct ParsedArgs {
    positionals: Vec<String>,
    options: std::collections::HashMap<&'static str, String>,
    switches: std::collections::HashSet<&'static str>,
}

impl ParsedArgs {
    /// Parses `args` against the allowed option/switch names.
    fn parse(
        args: &[String],
        value_opts: &[&'static str],
        bool_opts: &[&'static str],
    ) -> Result<ParsedArgs, String> {
        let mut parsed = ParsedArgs {
            positionals: Vec::new(),
            options: std::collections::HashMap::new(),
            switches: std::collections::HashSet::new(),
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(name) = value_opts.iter().find(|n| **n == a.as_str()) {
                let v = it
                    .next()
                    .ok_or_else(|| format!("missing value for {name}"))?;
                parsed.options.insert(name, v.clone());
            } else if let Some(name) = bool_opts.iter().find(|n| **n == a.as_str()) {
                parsed.switches.insert(name);
            } else if a.starts_with("--") {
                return Err(format!("unknown flag {a:?}\n{USAGE}"));
            } else {
                parsed.positionals.push(a.clone());
            }
        }
        Ok(parsed)
    }

    fn opt(&self, name: &str) -> Option<&String> {
        self.options.get(name)
    }

    fn flag(&self, name: &str) -> bool {
        self.switches.contains(name)
    }

    fn positional(&self, n: usize) -> Option<&String> {
        self.positionals.get(n)
    }

    /// Parses option `name` with `parse::<T>`, reporting it by name.
    fn parse_opt<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.opt(name) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| format!("bad {name}")),
        }
    }
}

/// The correlation options shared by `correlate`, `patterns` and
/// `diff`; `--dot` is patterns-only so the other subcommands reject it
/// instead of silently ignoring it.
const CORRELATE_VALUE_OPTS: &[&str] = &[
    "--port",
    "--internal",
    "--window-ms",
    "--memory-budget",
    "--spill-dir",
    "--shards",
    "--routers",
    "--workers-per-router",
    "--router-addr",
    "--max-seal-lag",
    "--ingest-threads",
];
const PATTERNS_VALUE_OPTS: &[&str] = &[
    "--port",
    "--internal",
    "--window-ms",
    "--memory-budget",
    "--spill-dir",
    "--shards",
    "--routers",
    "--workers-per-router",
    "--router-addr",
    "--max-seal-lag",
    "--ingest-threads",
    "--dot",
];
const CORRELATE_BOOL_OPTS: &[&str] = &[
    "--adaptive-window",
    "--stats",
    "--orphan-parity",
    "--shed-on-budget",
];
/// `--stats` is correlate-only, so `patterns`/`diff` reject it instead
/// of silently accepting a no-op (same convention as `--dot`).
const ANALYSIS_BOOL_OPTS: &[&str] = &["--adaptive-window", "--orphan-parity", "--shed-on-budget"];

fn access_from(args: &ParsedArgs) -> Result<AccessPointSpec, String> {
    let port: u16 = args.parse_opt("--port")?.ok_or("missing --port")?;
    let internal = args.opt("--internal").ok_or("missing --internal")?;
    let ips: Result<Vec<Ipv4Addr>, _> = internal.split(',').map(str::parse).collect();
    let ips = ips.map_err(|_| "bad --internal list")?;
    Ok(AccessPointSpec::new([port], ips))
}

fn window_from(args: &ParsedArgs) -> Result<Nanos, String> {
    Ok(Nanos::from_millis(
        args.parse_opt("--window-ms")?.unwrap_or(10),
    ))
}

/// Parses a byte count with optional k/m/g suffix (powers of 1024).
fn parse_bytes(s: &str) -> Result<usize, String> {
    let s = s.trim().to_ascii_lowercase();
    let (digits, mult) = match s.strip_suffix(['k', 'm', 'g']) {
        Some(d) => (
            d,
            match s.as_bytes()[s.len() - 1] {
                b'k' => 1usize << 10,
                b'm' => 1 << 20,
                _ => 1 << 30,
            },
        ),
        None => (s.as_str(), 1),
    };
    digits
        .parse::<usize>()
        .ok()
        .and_then(|n| n.checked_mul(mult))
        .ok_or_else(|| format!("bad --memory-budget {s:?}"))
}

/// Applies the shared budget-policy flags: `--memory-budget`,
/// `--spill-dir` and `--shed-on-budget`.
fn apply_budget_opts(
    mut config: CorrelatorConfig,
    args: &ParsedArgs,
) -> Result<CorrelatorConfig, String> {
    if let Some(budget) = args.opt("--memory-budget") {
        config = config.with_memory_budget(parse_bytes(budget)?);
    }
    if let Some(dir) = args.opt("--spill-dir") {
        config = config.with_spill_dir(dir);
    }
    if args.flag("--shed-on-budget") {
        config = config.with_shed_on_budget();
    }
    Ok(config)
}

fn correlate_file(
    path: &str,
    args: &ParsedArgs,
) -> Result<(CorrelationOutput, AccessPointSpec), String> {
    // Validate every flag before touching the filesystem, so a bad
    // flag is always reported by name.
    let access = access_from(args)?;
    let window = window_from(args)?;
    let mut config = CorrelatorConfig::new(access.clone()).with_window(window);
    if args.flag("--adaptive-window") {
        config = config.with_adaptive_window();
    }
    config = apply_budget_opts(config, args)?;
    if let Some(lag) = args.parse_opt::<u64>("--max-seal-lag")? {
        config = config.with_max_seal_lag(lag);
    }
    let shards = args.parse_opt::<usize>("--shards")?;
    if (shards.is_some() || args.opt("--routers").is_some())
        && (args.flag("--adaptive-window") || args.opt("--window-ms").is_some())
    {
        // The sharded router sequences by causal claims, not by a
        // sliding time window; workers deliver directly to engines.
        eprintln!(
            "note: --shards/--routers do not use the sliding window; \
             --window-ms/--adaptive-window only affect single-instance mode"
        );
    }
    // One facade for every mode: batch parses owned records; the
    // sharded pipeline ingests the text zero-copy and emits canonical
    // root order (same bytes for any shard count).
    if args.flag("--orphan-parity") {
        config = config.with_orphan_parity();
    }
    let (mode, router_transport) = mode_from(args, shards)?;
    let pipeline = Pipeline::new(PipelineConfig {
        correlator: config,
        mode,
        // 1 = single-threaded parse (default); 0 = one per core.
        ingest_threads: args.parse_opt::<usize>("--ingest-threads")?.unwrap_or(1),
        router_transport,
    })
    .map_err(|e| e.to_string())?;
    let source = if sniff_ptbin(path)? {
        Source::binary_path(path)
    } else {
        Source::path(path)
    };
    let out = pipeline.run(source).map_err(|e| format!("{path}: {e}"))?;
    Ok((out, access))
}

/// Resolves the correlation mode from `--shards` / `--routers` /
/// `--workers-per-router` / `--router-addr`. Without `--router-addr`
/// the distributed transport spawns `pt router --stdio` children of
/// this very binary over socketpairs; with it, the coordinator
/// connects to already-running `pt router --listen` peers.
fn mode_from(args: &ParsedArgs, shards: Option<usize>) -> Result<(Mode, RouterTransport), String> {
    let routers = args.parse_opt::<usize>("--routers")?;
    let Some(routers) = routers else {
        for flag in ["--workers-per-router", "--router-addr"] {
            if args.opt(flag).is_some() {
                return Err(format!("{flag} requires --routers"));
            }
        }
        let mode = match shards {
            Some(n) => Mode::Sharded(n),
            None => Mode::Batch,
        };
        return Ok((mode, RouterTransport::default()));
    };
    if shards.is_some() {
        return Err("--routers conflicts with --shards (pick one pipeline)".into());
    }
    let workers_per_router = args
        .parse_opt::<usize>("--workers-per-router")?
        .unwrap_or(1);
    let transport = match args.opt("--router-addr") {
        Some(list) => RouterTransport::Connect {
            addrs: list.split(',').map(str::trim).map(String::from).collect(),
        },
        None => RouterTransport::Spawn {
            exe: std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?,
        },
    };
    Ok((
        Mode::Distributed {
            routers,
            workers_per_router,
        },
        transport,
    ))
}

/// Reads just the first magic-length bytes of `path` to decide whether
/// it is a PTBIN stream. A file shorter than the magic is treated as
/// text (and will fail later with a text-parse error if it is neither).
fn sniff_ptbin(path: &str) -> Result<bool, String> {
    use std::io::Read as _;
    let mut f = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let mut magic = [0u8; 4];
    match f.read_exact(&mut magic) {
        Ok(()) => Ok(binfmt::is_ptbin(&magic)),
        Err(_) => Ok(false),
    }
}

/// `pt convert IN OUT`: translates TCP_TRACE text to PTBIN or PTBIN
/// back to text, sniffing the direction from the input's magic bytes.
/// Text output streams through a buffered writer in record-sized
/// chunks; binary output is assembled record-by-record by the interning
/// encoder.
fn convert_cmd(raw: &[String]) -> Result<(), String> {
    let args = ParsedArgs::parse(raw, &["--ingest-threads"], &[])?;
    let in_path = args.positional(0).ok_or("missing input file")?;
    let out_path = args.positional(1).ok_or("missing output file")?;
    let threads = args.parse_opt::<usize>("--ingest-threads")?.unwrap_or(1);
    if sniff_ptbin(in_path)? {
        // Binary -> text: stream one rendered line per record.
        use std::io::Write as _;
        let buf = binfmt::read_binary_file(in_path).map_err(|e| format!("{in_path}: {e}"))?;
        let reader = binfmt::Reader::new(&buf).map_err(|e| format!("{in_path}: {e}"))?;
        let file = std::fs::File::create(out_path).map_err(|e| format!("{out_path}: {e}"))?;
        let mut w = std::io::BufWriter::new(file);
        let mut n = 0usize;
        for rec in reader.iter() {
            let rec = rec.map_err(|e| format!("{in_path}: {e}"))?;
            writeln!(w, "{rec}").map_err(|e| format!("{out_path}: {e}"))?;
            n += 1;
        }
        w.flush().map_err(|e| format!("{out_path}: {e}"))?;
        println!("wrote {n} records to {out_path} (TCP_TRACE text)");
    } else {
        // Text -> binary: parallel borrowed parse, then one interning
        // encode pass (single-threaded parse streams record-by-record).
        let text = std::fs::read_to_string(in_path).map_err(|e| format!("{in_path}: {e}"))?;
        let (bin, n) = if threads == 1 {
            let mut enc = binfmt::Encoder::new();
            for rec in parse_log_iter(&text) {
                let rec = rec.map_err(|e| format!("{in_path}: {e}"))?;
                enc.push(&rec).map_err(|e| format!("{in_path}: {e}"))?;
            }
            let n = enc.record_count();
            (enc.finish(), n)
        } else {
            let refs =
                parse_refs_parallel(&text, threads).map_err(|e| format!("{in_path}: {e}"))?;
            let n = refs.len() as u64;
            (
                binfmt::encode_refs(&refs).map_err(|e| format!("{in_path}: {e}"))?,
                n,
            )
        };
        std::fs::write(out_path, &bin).map_err(|e| format!("{out_path}: {e}"))?;
        println!(
            "wrote {n} records to {out_path} (PTBIN, {} bytes)",
            bin.len()
        );
    }
    Ok(())
}

/// `pt router`: run one distributed-correlation router peer. With
/// `--stdio` it speaks the claim wire protocol over stdin/stdout (the
/// coordinator's `--routers N` spawn transport); with `--listen ADDR`
/// it accepts coordinators over TCP, one session at a time, until
/// SIGINT/SIGTERM.
fn router_cmd(raw: &[String]) -> Result<(), String> {
    let args = ParsedArgs::parse(raw, &["--listen"], &["--stdio"])?;
    if !args.positionals.is_empty() {
        return Err("router takes no positional arguments".into());
    }
    match (args.flag("--stdio"), args.opt("--listen")) {
        (true, Some(_)) => Err("--stdio conflicts with --listen".into()),
        (true, None) => {
            let stdin = std::io::stdin().lock();
            let stdout = std::io::stdout().lock();
            serve_router(stdin, stdout).map_err(|e| e.to_string())
        }
        (false, Some(addr)) => {
            install_stop_handlers();
            let listener = std::net::TcpListener::bind(addr).map_err(|e| format!("{addr}: {e}"))?;
            // Non-blocking accept so a stop signal between sessions is
            // honored promptly.
            listener.set_nonblocking(true).map_err(|e| e.to_string())?;
            eprintln!(
                "router: listening on {}",
                listener.local_addr().map_err(|e| e.to_string())?
            );
            while !STOP.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, peer)) => {
                        stream.set_nodelay(true).ok();
                        stream.set_nonblocking(false).map_err(|e| e.to_string())?;
                        let reader = stream.try_clone().map_err(|e| e.to_string())?;
                        eprintln!("router: session from {peer}");
                        match serve_router(reader, stream) {
                            Ok(()) => eprintln!("router: session from {peer} drained"),
                            // A coordinator that vanishes must not
                            // take the router down with it.
                            Err(e) => eprintln!("router: session from {peer} failed: {e}"),
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(20));
                    }
                    Err(e) => return Err(format!("accept: {e}")),
                }
            }
            Ok(())
        }
        (false, None) => Err("router needs --stdio or --listen ADDR".into()),
    }
}

/// Rises when SIGINT or SIGTERM is delivered; `serve` polls it.
static STOP: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    STOP.store(true, Ordering::Relaxed);
}

/// Installs `on_signal` for SIGINT and SIGTERM via `signal(2)`. The
/// handler only stores to an atomic, which is async-signal-safe.
#[cfg(unix)]
fn install_stop_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

#[cfg(not(unix))]
fn install_stop_handlers() {}

/// Prints KPI lines and (optionally) one line per sealed path.
struct StdoutSink {
    print_paths: bool,
}

impl ServeSink for StdoutSink {
    fn on_sealed(&mut self, cags: &[Cag]) {
        if !self.print_paths {
            return;
        }
        for cag in cags {
            let lat = cag
                .total_latency()
                .map(|n| format!("{:.3}ms", n.as_nanos() as f64 / 1e6))
                .unwrap_or_else(|| "unfinished".into());
            println!(
                "path: root_ts={} vertices={} latency={lat}",
                cag.root().ts.as_nanos(),
                cag.vertices.len()
            );
        }
    }

    fn on_kpi(&mut self, k: &ServeKpi) {
        println!(
            "kpi: records={} sealed={} patterns={} p99_seal_lag={} state={}B rss={}B shed={} \
             spilled={} spill_faults={}",
            k.records_in,
            k.cags_sealed,
            k.patterns,
            k.p99_seal_lag,
            k.state_bytes,
            k.rss_bytes.unwrap_or(0),
            k.shed_records,
            k.spilled,
            k.spill_faults
        );
    }
}

fn serve_cmd(raw: &[String]) -> Result<(), String> {
    let args = ParsedArgs::parse(
        raw,
        &[
            "--port",
            "--internal",
            "--window-ms",
            "--memory-budget",
            "--spill-dir",
            "--shards",
            "--routers",
            "--workers-per-router",
            "--router-addr",
            "--max-seal-lag",
            "--format",
            "--idle-end-ms",
            "--shed",
            "--queue",
            "--kpi-every",
            "--poll-ms",
        ],
        &["--adaptive-window", "--print-paths", "--shed-on-budget"],
    )?;
    if args.positionals.is_empty() {
        return Err("missing source file(s)".into());
    }
    let access = access_from(&args)?;
    let mut config = CorrelatorConfig::new(access).with_window(window_from(&args)?);
    if args.flag("--adaptive-window") {
        config = config.with_adaptive_window();
    }
    config = apply_budget_opts(config, &args)?;
    if let Some(lag) = args.parse_opt::<u64>("--max-seal-lag")? {
        config = config.with_max_seal_lag(lag);
    }
    let shards = args.parse_opt::<usize>("--shards")?;
    let (mode, router_transport) = match mode_from(&args, shards)? {
        // `mode_from` defaults to batch; a shard-less, router-less
        // daemon runs the streaming engine.
        (Mode::Batch, t) => (Mode::Streaming, t),
        resolved => resolved,
    };
    let kind = match args.opt("--format").map(String::as_str) {
        None | Some("auto") => SourceKind::Auto,
        Some("text") => SourceKind::Text,
        Some("ptbin") => SourceKind::Ptbin,
        Some(other) => return Err(format!("bad --format {other:?} (auto|text|ptbin)")),
    };
    let sources = args
        .positionals
        .iter()
        .map(|p| SourceSpec {
            path: p.into(),
            kind,
        })
        .collect();
    let pipeline = PipelineConfig {
        correlator: config,
        mode,
        ingest_threads: 1,
        router_transport,
    };
    let mut cfg = ServeConfig::new(pipeline, sources);
    if let Some(ms) = args.parse_opt::<u64>("--idle-end-ms")? {
        cfg.idle_end = (ms != 0).then(|| std::time::Duration::from_millis(ms));
    }
    cfg.shed = match args.opt("--shed").map(String::as_str) {
        None | Some("block") => ShedPolicy::Block,
        Some("drop") => ShedPolicy::Drop,
        Some(other) => return Err(format!("bad --shed {other:?} (block|drop)")),
    };
    if let Some(q) = args.parse_opt::<usize>("--queue")? {
        cfg.queue_batches = q;
    }
    if let Some(n) = args.parse_opt::<u64>("--kpi-every")? {
        cfg.kpi_every_records = n;
    }
    if let Some(ms) = args.parse_opt::<u64>("--poll-ms")? {
        cfg.poll_interval = std::time::Duration::from_millis(ms.max(1));
    }
    let server = Server::new(cfg).map_err(|e| e.to_string())?;
    install_stop_handlers();
    let mut sink = StdoutSink {
        print_paths: args.flag("--print-paths"),
    };
    let report = server.run(&mut sink, &STOP).map_err(|e| e.to_string())?;
    println!("{}", report.stats_line());
    Ok(())
}

fn simulate(raw: &[String]) -> Result<(), String> {
    let args = ParsedArgs::parse(
        raw,
        &[
            "--clients",
            "--seconds",
            "--seed",
            "--skew-ms",
            "--out",
            "--web-replicas",
            "--app-replicas",
            "--db-replicas",
            "--lb-policy",
            "--pool",
            "--loss",
            "--capture-drop",
            "--mix",
        ],
        &["--noise"],
    )?;
    let clients: usize = args.parse_opt("--clients")?.ok_or("missing --clients")?;
    let seconds: u64 = args.parse_opt("--seconds")?.unwrap_or(30);
    let out_path = args.opt("--out").ok_or("missing --out")?.clone();
    let mut cfg = rubis::ExperimentConfig::quick(clients, seconds);
    if let Some(seed) = args.parse_opt("--seed")? {
        cfg.seed = seed;
    }
    match args.opt("--mix").map(String::as_str) {
        None => {}
        Some("browse") => cfg.mix = rubis::Mix::browse_only(),
        Some("bulk") => cfg.mix = rubis::Mix::bulk_browse(),
        Some("default") => cfg.mix = rubis::Mix::default_mix(),
        Some(other) => return Err(format!("bad --mix {other:?} (browse|bulk|default)")),
    }
    if let Some(skew) = args.parse_opt("--skew-ms")? {
        cfg.spec = cfg.spec.with_skew_ms(skew);
    }
    let lb = match args.opt("--lb-policy").map(String::as_str) {
        None | Some("rr") => rubis::LbPolicy::RoundRobin,
        Some("least-conn") => rubis::LbPolicy::LeastConnections,
        Some(other) => return Err(format!("bad --lb-policy {other:?} (rr|least-conn)")),
    };
    for (flag, tier) in [
        ("--web-replicas", 0usize),
        ("--app-replicas", 1),
        ("--db-replicas", 2),
    ] {
        if let Some(n) = args.parse_opt::<usize>(flag)? {
            if n == 0 {
                return Err(format!("bad {flag}: a tier needs at least one node"));
            }
            if n > rubis::MAX_REPLICAS {
                return Err(format!(
                    "bad {flag}: the replica subnet scheme supports at most {} nodes per tier",
                    rubis::MAX_REPLICAS
                ));
            }
            cfg.spec = cfg.spec.with_replicas(tier, n, lb);
        }
    }
    if let Some(conns) = args.parse_opt::<usize>("--pool")? {
        if conns == 0 {
            return Err("bad --pool: a pool needs at least one connection".into());
        }
        cfg.spec = cfg.spec.with_pool(conns);
    }
    if let Some(loss) = args.parse_opt::<f64>("--loss")? {
        if !(0.0..1.0).contains(&loss) {
            return Err("bad --loss: probability must be in [0, 1)".into());
        }
        cfg.spec = cfg.spec.with_loss(loss);
    }
    if let Some(drop) = args.parse_opt::<f64>("--capture-drop")? {
        if !(0.0..1.0).contains(&drop) {
            return Err("bad --capture-drop: probability must be in [0, 1)".into());
        }
        cfg.spec = cfg.spec.with_sniffer_capture(drop);
    }
    if args.flag("--noise") {
        cfg.noise = rubis::NoiseSpec {
            ssh_msgs_per_sec: 40.0,
            mysql_msgs_per_sec: 150.0,
        };
    }
    let out = rubis::run(cfg);
    let mut text = String::new();
    for r in &out.records {
        text.push_str(&r.to_string());
        text.push('\n');
    }
    std::fs::write(&out_path, text).map_err(|e| format!("{out_path}: {e}"))?;
    let internal: Vec<String> = out
        .spec
        .internal_ips()
        .iter()
        .map(|ip| ip.to_string())
        .collect();
    println!(
        "wrote {} records to {out_path} ({} requests completed, frontend port {}, internal {})",
        out.records.len(),
        out.service.completed,
        out.spec.web.port,
        internal.join(","),
    );
    if out.capture_dropped > 0 {
        println!(
            "partial capture: the sniffer missed {} records entirely",
            out.capture_dropped
        );
    }
    Ok(())
}

fn correlate_cmd(raw: &[String]) -> Result<(), String> {
    let args = ParsedArgs::parse(raw, CORRELATE_VALUE_OPTS, CORRELATE_BOOL_OPTS)?;
    let path = args.positional(0).ok_or("missing log file")?;
    let (out, _) = correlate_file(path, &args)?;
    println!(
        "correlated {} causal paths ({} deformed/unfinished)",
        out.cags.len(),
        out.unfinished.len()
    );
    println!("{}", out.metrics.summary());
    if args.flag("--stats") {
        // Ingest counters: how duplicate byte ranges were eliminated
        // (v1 `retrans` marker vs v2 `seq=` range arithmetic).
        println!(
            "ingest: retrans_dropped={} seq_dedup_ranges={} v2_records={}",
            out.metrics.retrans_dropped, out.metrics.seq_dedup_ranges, out.metrics.v2_records
        );
    }
    if out.metrics.orphan_dropped > 0 {
        println!(
            "router: dropped {} orphan-chain records reader-side (--orphan-parity ships them)",
            out.metrics.orphan_dropped
        );
    }
    if out.metrics.ranker.rtt_samples > 0 {
        println!(
            "adaptive window: {} updates over {} rtt samples",
            out.metrics.ranker.window_updates, out.metrics.ranker.rtt_samples
        );
    }
    if out.metrics.engine.budget_evicted_cags > 0 {
        println!(
            "memory budget: evicted {} stale unfinished paths ({} vertices)",
            out.metrics.engine.budget_evicted_cags, out.metrics.engine.budget_evicted_vertices
        );
    }
    if out.metrics.engine.spilled_cags > 0 || out.metrics.spilled_dedup_entries > 0 {
        println!(
            "spill: cags={} orphans={} dedup={} faults={} bytes={} \
             pages_written={} pages_read={} queue_hits={}",
            out.metrics.engine.spilled_cags,
            out.metrics.engine.spilled_orphans,
            out.metrics.spilled_dedup_entries,
            out.metrics.engine.spill_faults + out.metrics.spill_dedup_faults,
            out.metrics.engine.spilled_bytes,
            out.metrics.spill_pages_written,
            out.metrics.spill_pages_read,
            out.metrics.spill_queue_hits
        );
    }
    if !out.noise_samples.is_empty() {
        println!("sample noise discards:");
        for a in out.noise_samples.iter().take(5) {
            println!("  {a}");
        }
    }
    let latencies: Vec<f64> = out
        .cags
        .iter()
        .filter_map(|c| c.total_latency())
        .map(|n| n.as_nanos() as f64 / 1e6)
        .collect();
    if !latencies.is_empty() {
        let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
        println!(
            "mean request latency: {mean:.2} ms over {} paths",
            latencies.len()
        );
    }
    Ok(())
}

fn patterns_cmd(raw: &[String]) -> Result<(), String> {
    let args = ParsedArgs::parse(raw, PATTERNS_VALUE_OPTS, ANALYSIS_BOOL_OPTS)?;
    let path = args.positional(0).ok_or("missing log file")?;
    let (out, _) = correlate_file(path, &args)?;
    let agg = PatternAggregator::from_cags(&out.cags);
    println!("{} patterns over {} paths:", agg.len(), out.cags.len());
    for p in agg.average_paths() {
        println!(
            "\npattern {} — {} requests, mean total {}",
            p.key, p.count, p.mean_total
        );
        for (c, pct) in &p.percentages {
            println!("  {:<22} {:>6.1}%", c.to_string(), pct);
        }
    }
    if let Some(dot_path) = args.opt("--dot") {
        let paths = agg.average_paths();
        let dom = paths.first().ok_or("no pattern to render")?;
        std::fs::write(dot_path, average_path_to_dot(dom))
            .map_err(|e| format!("{dot_path}: {e}"))?;
        println!("\nwrote dominant average path to {dot_path}");
    }
    Ok(())
}

fn diff_cmd(raw: &[String]) -> Result<(), String> {
    let args = ParsedArgs::parse(raw, CORRELATE_VALUE_OPTS, ANALYSIS_BOOL_OPTS)?;
    let base_path = args.positional(0).ok_or("missing baseline log")?;
    let cur_path = args.positional(1).ok_or("missing current log")?;
    let (base, _) = correlate_file(base_path, &args)?;
    let (cur, _) = correlate_file(cur_path, &args)?;
    let b = BreakdownReport::dominant(&base.cags).ok_or("no patterns in baseline")?;
    let c = BreakdownReport::dominant(&cur.cags).ok_or("no patterns in current")?;
    let diff = DiffReport::between(&b, &c);
    print!("{}", diff.format_table());
    match Diagnosis::localize(&diff, 8.0) {
        Some(d) => println!("\ndiagnosis: {} — {}", d.suspect, d.explanation),
        None => println!("\ndiagnosis: no significant change"),
    }
    Ok(())
}
