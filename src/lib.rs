//! # precisetracer — precise request tracing for multi-tier services of black boxes
//!
//! A full reproduction of *"Precise Request Tracing and Performance
//! Debugging for Multi-tier Services of Black Boxes"* (Zhang, Zhan, Li,
//! Wang, Meng, Sang — DSN 2009), including every substrate the paper's
//! evaluation depends on:
//!
//! | crate | role |
//! |---|---|
//! | [`tracer`] (`tracer-core`) | the paper's contribution: activity model, precise Ranker + Engine correlation, component activity graphs (CAGs), causal path patterns, latency-percentage analysis and fault localization |
//! | [`sim`] (`simnet`) | discrete-event substrate: skewed clocks, TCP-like channels with MSS segmentation, CPU/thread/lock resources |
//! | [`rubis`] (`multitier`) | the RUBiS-like three-tier deployment with a TCP_TRACE-equivalent probe, ground truth, faults and noise |
//! | [`baselines`] (`baseline`) | WAP5-style nesting and Project5-style convolution comparators |
//!
//! ## Quickstart
//!
//! ```
//! use precisetracer::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Run a small simulated RUBiS session (50 emulated clients).
//! let out = rubis::run(rubis::ExperimentConfig::quick(8, 6));
//!
//! // 2. Correlate its TCP_TRACE log into causal paths.
//! let (corr, accuracy) = out.correlate(Nanos::from_millis(10))?;
//! assert!(accuracy.is_perfect());
//!
//! // 3. Analyze: latency percentages of the dominant request pattern.
//! let breakdown = BreakdownReport::dominant(&corr.cags).expect("patterns");
//! println!("{}", breakdown.format_table());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use baseline as baselines;
pub use multitier as rubis;
pub use simnet as sim;
pub use tracer_core as tracer;

/// One-stop imports for examples and applications.
pub mod prelude {
    pub use baseline::{
        self as baselines, evaluate as evaluate_baseline, infer_paths, NestingConfig,
    };
    pub use multitier::{
        self as rubis, ExperimentConfig, Fault, Mix, NoiseSpec, Phases, ServiceSpec,
    };
    pub use simnet::{Dist, SimDur, SimTime};
    pub use tracer_core::pattern::PatternAggregator;
    pub use tracer_core::prelude::*;
}
